package schedd

import (
	"context"
	"errors"
	"sync"
	"time"

	"reassign/internal/api"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/exec"
	"reassign/internal/market"
	"reassign/internal/provenance"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// job is one submission's full lifecycle: queued → running →
// done/failed/canceled. The mutable state behind mu is what status()
// snapshots for the API.
type job struct {
	id     string
	req    api.SubmitRequest
	tenant string // normalised accounting label (empty → "default")
	w      *dag.Workflow
	fleet  *cloud.Fleet
	sig    string

	mu         sync.Mutex
	state      string
	submitted  time.Time
	started    time.Time
	finishedAt time.Time
	cancelRun  context.CancelFunc

	cacheHit       bool
	episodes       int
	learnSeconds   float64
	plan           *api.PlanDocument
	prov           []provenance.Execution
	execMakespan   float64
	marketCost     float64
	preemptions    int
	deadlineMissed bool
	err            *api.Error
}

// finished reports whether the job reached a terminal state.
func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case api.StateDone, api.StateFailed, api.StateCanceled:
		return true
	}
	return false
}

// status snapshots the job as an api.JobStatus.
func (j *job) status() *api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &api.JobStatus{
		SchemaVersion:       api.SchemaVersion,
		ID:                  j.id,
		State:               j.state,
		Workflow:            j.w.Name,
		Activations:         j.w.Len(),
		Fleet:               j.fleet.Name,
		VMs:                 j.fleet.Len(),
		SubmittedAt:         j.submitted.UTC().Format(time.RFC3339Nano),
		Episodes:            j.episodes,
		CacheHit:            j.cacheHit,
		LearningSeconds:     j.learnSeconds,
		Plan:                j.plan,
		Provenance:          j.prov,
		ExecMakespanSeconds: j.execMakespan,
		MarketCostUSD:       j.marketCost,
		Preemptions:         j.preemptions,
		Tenant:              j.req.Tenant,
		DeadlineSeconds:     j.req.DeadlineSeconds,
		DeadlineMissed:      j.deadlineMissed,
		Error:               j.err,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339Nano)
		st.LatencySeconds = j.finishedAt.Sub(j.submitted).Seconds()
	}
	return st
}

// runJob executes one popped job on a worker goroutine.
func (s *Server) runJob(j *job) {
	if s.testHook != nil {
		s.testHook(j)
	}
	j.mu.Lock()
	if j.state != api.StateQueued {
		// Canceled while queued; the cancel handler already settled it.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state = api.StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	defer cancel()
	s.tenants.started(j.tenant)

	s.inflight.Add(1)
	err := s.execute(ctx, j)
	s.inflight.Add(-1)

	now := time.Now()
	j.mu.Lock()
	j.finishedAt = now
	switch {
	case err == nil:
		j.state = api.StateDone
	case errors.Is(err, context.Canceled):
		j.state = api.StateCanceled
		j.err = api.Errorf(api.CodeCanceled, "", "canceled while running")
	default:
		j.state = api.StateFailed
		j.err = api.FromError(err)
	}
	state := j.state
	latency := now.Sub(j.submitted).Seconds()
	deadline := j.req.DeadlineSeconds
	if deadline > 0 && latency > deadline {
		j.deadlineMissed = true
	}
	j.mu.Unlock()

	switch state {
	case api.StateDone:
		s.completed.Add(1)
	case api.StateCanceled:
		s.canceled.Add(1)
	default:
		s.failed.Add(1)
	}
	s.recordLatency(latency)
	s.tenants.finished(j.tenant, state, latency, deadline, true)
}

// execute runs the job's pipeline: replay a submitted plan, or learn
// one (optionally warm-started from the cache), then optionally
// execute it on the virtual-time master for provenance.
func (s *Server) execute(ctx context.Context, j *job) error {
	req := j.req
	var fluct *cloud.FluctuationModel
	if req.Fluctuation {
		fm := cloud.DefaultFluctuation()
		fluct = &fm
	}

	var doc *api.PlanDocument
	if req.Plan != nil {
		// Replay path: the plan was validated at submission; simulate it
		// for its makespan. The run carries the job's context, so cancel
		// (and daemon shutdown) aborts a replay mid-simulation instead
		// of blocking until it finishes.
		eng, err := s.pool.Acquire(j.w, j.fleet, &sched.Plan{
			PlanName: "submitted",
			Assign:   req.Plan.Plan.Map(),
		}, sim.Config{Seed: req.Seed, Fluct: fluct, Sink: s.agg, Ctx: ctx})
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			s.pool.Put(eng)
			return err
		}
		makespan := res.Makespan
		s.pool.Put(eng)
		doc = api.NewPlanDocument(j.w.Name, j.fleet.Name, makespan, req.Plan.Plan)
	} else {
		params := core.DefaultParams()
		if req.Learn.Alpha != 0 {
			params.Alpha = req.Learn.Alpha
		}
		if req.Learn.Gamma != 0 {
			params.Gamma = req.Learn.Gamma
		}
		if req.Learn.Epsilon != 0 {
			params.Epsilon = req.Learn.Epsilon
		}
		episodes := req.Learn.Episodes
		if episodes == 0 {
			episodes = s.cfg.DefaultEpisodes
		}
		opts := []core.Option{
			core.WithSeed(req.Seed),
			core.WithSink(s.agg),
			core.WithEnginePool(s.pool),
			core.WithContext(ctx),
		}
		if req.Learn.Replicas > 1 {
			opts = append(opts, core.WithReplicas(req.Learn.Replicas))
		}
		if !req.NoWarmStart {
			if t := s.cache.get(j.sig, req.Seed); t != nil {
				opts = append(opts, core.WithTable(t))
				j.mu.Lock()
				j.cacheHit = true
				j.mu.Unlock()
			}
		}
		learner, err := core.NewLearner(core.Config{
			Workflow: j.w,
			Fleet:    j.fleet,
			Params:   params,
			Episodes: episodes,
			Sim:      sim.Config{Fluct: fluct},
		}, opts...)
		if err != nil {
			return err
		}
		res, err := learner.Learn()
		if err != nil {
			return err
		}
		// The finished table feeds future same-structure submissions —
		// including NoWarmStart ones, which skip the read but still
		// contribute their result.
		s.cache.put(j.sig, res.Table)
		doc = api.NewPlanDocument(j.w.Name, j.fleet.Name, res.PlanMakespan, res.Plan)
		j.mu.Lock()
		j.episodes = len(res.Episodes)
		j.learnSeconds = res.LearningTime.Seconds()
		j.mu.Unlock()
	}
	j.mu.Lock()
	j.plan = doc
	j.mu.Unlock()

	if !req.Execute {
		return nil
	}
	store := provenance.NewStore()
	workers := j.fleet.Len()
	if workers > 8 {
		workers = 8
	}
	var tr exec.Transport = &exec.InProc{
		Workers: workers,
		Runner:  exec.SimRunner{Fluct: fluct, Seed: req.Seed + 2000},
	}
	opts := []exec.Option{exec.WithStore(store, j.id), exec.WithSink(s.agg)}

	// Market replay: generate the trace against the job's fleet and
	// wrap the transport so traced notices, kills and health changes
	// reach the master interleaved with worker traffic.
	var pb *market.Playback
	if req.Market != nil {
		rg, _ := market.RegimeByName(req.Market.Regime) // validated at submit
		mseed := req.Market.Seed
		if mseed == 0 {
			mseed = req.Seed + 4000
		}
		horizon := req.Market.Horizon
		if horizon == 0 {
			horizon = 3600
		}
		trc, err := market.Generate(market.DefaultCatalogue(), j.fleet, rg, mseed, horizon)
		if err != nil {
			return err
		}
		pb, err = market.NewPlayback(trc, nil)
		if err != nil {
			return err
		}
		tr = exec.NewMarketFeed(tr, pb)
		opts = append(opts, exec.WithMarket(pb))
		if req.Market.ReactiveOnly {
			opts = append(opts, exec.WithReactiveOnly())
		}
	}

	m, err := exec.New(j.w, j.fleet, doc.Plan, tr, opts...)
	if err != nil {
		return err
	}
	rep, err := m.Run(ctx)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.prov = store.All()
	j.execMakespan = rep.Makespan
	if pb != nil {
		j.marketCost = rep.Cost
		j.preemptions = rep.Preempted
	}
	j.mu.Unlock()
	if pb != nil {
		s.markets.record(pb, rep)
	}
	return nil
}
