package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"reassign/internal/api"
	"reassign/internal/core"
)

// newTestServer starts a daemon with a small config, serving over
// httptest. The caller gets the base URL; cleanup shuts both down.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts.URL
}

// submitResp is a decoded submission response: either an accepted
// JobStatus or the error body, plus the HTTP status code.
type submitResp struct {
	StatusCode int
	Err        *api.Error
}

func submit(t *testing.T, url string, req api.SubmitRequest) (*api.JobStatus, submitResp) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sr := submitResp{StatusCode: resp.StatusCode}
	if resp.StatusCode != http.StatusAccepted {
		var apiErr api.Error
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatalf("decoding error body (HTTP %d): %v", resp.StatusCode, err)
		}
		sr.Err = &apiErr
		return nil, sr
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st, sr
}

func getStatus(t *testing.T, url, id string) *api.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// waitDone polls until the job reaches a terminal state.
func waitDone(t *testing.T, url, id string) *api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		switch st.State {
		case api.StateDone, api.StateFailed, api.StateCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// smallJob is a fast-learning submission used across the suite.
func smallJob(seed int64) api.SubmitRequest {
	return api.SubmitRequest{
		SchemaVersion: api.SchemaVersion,
		Workflow:      api.WorkflowSpec{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: 20, Seed: 1}},
		Fleet:         api.FleetSpec{},
		Learn:         api.LearnSpec{Episodes: 5},
		Seed:          seed,
	}
}

func TestSubmitStatusHappyPath(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 2})

	st, resp := submit(t, url, smallJob(7))
	if st == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	if st.State != api.StateQueued && st.State != api.StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	if st.Workflow == "" || st.Activations == 0 || st.VMs != 9 {
		// Table I at 16 vCPUs provisions 9 VMs.
		t.Fatalf("job metadata missing: %+v", st)
	}

	done := waitDone(t, url, st.ID)
	if done.State != api.StateDone {
		t.Fatalf("job ended %s: %+v", done.State, done.Error)
	}
	if done.Plan == nil || done.Plan.Plan.Len() != done.Activations {
		t.Fatalf("done job should carry a full plan: %+v", done.Plan)
	}
	if done.Plan.MakespanSeconds <= 0 || done.Episodes != 5 {
		t.Fatalf("plan makespan %v, episodes %d", done.Plan.MakespanSeconds, done.Episodes)
	}
	if done.LatencySeconds <= 0 {
		t.Fatal("finished job should report latency")
	}

	// The listing includes it, without the heavy fields.
	resp2, err := http.Get(url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list []api.JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].Plan != nil {
		t.Fatalf("listing: %+v", list)
	}
}

func TestSubmitMalformedDAX(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	req := smallJob(1)
	req.Workflow = api.WorkflowSpec{Format: "dax", Source: "<adag><job this is not xml"}
	st, resp := submit(t, url, req)
	if st != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed DAX: HTTP %d, want 400", resp.StatusCode)
	}
	if resp.Err == nil || resp.Err.Code != api.CodeBadRequest || resp.Err.Field != "workflow" {
		t.Fatalf("error body %+v", resp.Err)
	}
}

func TestSubmitInvalidPlan(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})

	// A plan naming a VM outside the fleet is rejected at submission
	// with the offending entry in the error field.
	req := smallJob(1)
	w, err := req.Workflow.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]int)
	for _, a := range w.Activations() {
		m[a.ID] = 0
	}
	m[w.Activations()[0].ID] = 999
	req.Plan = &api.PlanDocument{SchemaVersion: api.SchemaVersion, Plan: core.NewPlan(m)}
	st, resp := submit(t, url, req)
	if st != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid plan: HTTP %d, want 400", resp.StatusCode)
	}
	if resp.Err == nil || resp.Err.Code != api.CodeInvalidPlan || !strings.Contains(resp.Err.Field, "plan.") {
		t.Fatalf("error body %+v", resp.Err)
	}

	// The valid version of the same plan replays successfully.
	m[w.Activations()[0].ID] = 0
	req.Plan = &api.PlanDocument{SchemaVersion: api.SchemaVersion, Plan: core.NewPlan(m)}
	st, resp = submit(t, url, req)
	if st == nil {
		t.Fatalf("valid plan rejected: HTTP %d", resp.StatusCode)
	}
	done := waitDone(t, url, st.ID)
	if done.State != api.StateDone || done.Plan == nil || done.Plan.MakespanSeconds <= 0 {
		t.Fatalf("replay failed: %+v %+v", done, done.Error)
	}
}

func TestQueueFull(t *testing.T) {
	// One worker held on a gate, a one-deep queue: the third submission
	// must be rejected with 429 and counted.
	gate := make(chan struct{})
	var held sync.WaitGroup
	held.Add(1)
	s := New(Config{Workers: 1, QueueDepth: 1})
	var once sync.Once
	s.testHook = func(*job) {
		once.Do(held.Done)
		<-gate
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	first, resp := submit(t, ts.URL, smallJob(1))
	if first == nil {
		t.Fatalf("first submit rejected: HTTP %d", resp.StatusCode)
	}
	held.Wait() // worker is now parked on the gate
	second, resp := submit(t, ts.URL, smallJob(2))
	if second == nil {
		t.Fatalf("second submit rejected: HTTP %d", resp.StatusCode)
	}
	third, resp := submit(t, ts.URL, smallJob(3))
	if third != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Err == nil || resp.Err.Code != api.CodeQueueFull {
		t.Fatalf("error body %+v", resp.Err)
	}
	if s.rejected.Load() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.rejected.Load())
	}
	// The rejected job is not registered.
	if got := getStatusCode(t, ts.URL+"/v1/jobs/"+jobIDAfter(second.ID)); got != http.StatusNotFound {
		t.Fatalf("rejected job lookup: HTTP %d, want 404", got)
	}
}

// jobIDAfter returns the ID the rejected submission briefly held.
func jobIDAfter(id string) string {
	var n int
	fmt.Sscanf(id, "j%06d", &n)
	return fmt.Sprintf("j%06d", n+1)
}

func getStatusCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestCancel(t *testing.T) {
	// Hold the single worker so the second job stays queued, then
	// cancel it: it must settle canceled without ever running.
	gate := make(chan struct{})
	var held sync.WaitGroup
	held.Add(1)
	s := New(Config{Workers: 1, QueueDepth: 8})
	var once sync.Once
	s.testHook = func(*job) {
		once.Do(held.Done)
		<-gate
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	running, resp := submit(t, ts.URL, smallJob(1))
	if running == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	held.Wait()
	queued, resp := submit(t, ts.URL, smallJob(2))
	if queued == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}

	cresp, err := http.Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d", cresp.StatusCode)
	}
	st := getStatus(t, ts.URL, queued.ID)
	if st.State != api.StateCanceled {
		t.Fatalf("queued job state %q, want canceled", st.State)
	}

	// Canceling a finished job conflicts.
	cresp, err = http.Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: HTTP %d, want 409", cresp.StatusCode)
	}

	// Release the gate; the first (long-gated) job now runs. Cancel it
	// mid-run via its context.
	close(gate)
	done := waitDone(t, ts.URL, running.ID)
	if done.State != api.StateDone {
		t.Fatalf("held job ended %q", done.State)
	}

	// Unknown job → 404.
	if got := getStatusCode(t, ts.URL+"/v1/jobs/zzz"); got != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", got)
	}
}

func TestCancelRunning(t *testing.T) {
	s, url := newTestServer(t, Config{Workers: 1})
	req := smallJob(1)
	req.Learn.Episodes = 100000 // long enough to catch mid-run
	req.Workflow.Synthetic.Nodes = 60
	st, resp := submit(t, url, req)
	if st == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	// Wait for it to start.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, url, st.ID).State == api.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cresp, err := http.Post(url+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d", cresp.StatusCode)
	}
	done := waitDone(t, url, st.ID)
	if done.State != api.StateCanceled {
		t.Fatalf("state %q, want canceled (err %+v)", done.State, done.Error)
	}
	if s.canceled.Load() != 1 {
		t.Fatalf("canceled counter %d, want 1", s.canceled.Load())
	}
}

func TestConcurrentSubmits(t *testing.T) {
	// Hammer the daemon from many goroutines; every accepted job must
	// finish done. Run under -race this doubles as the data-race test.
	_, url := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := smallJob(int64(i))
			req.Workflow.Synthetic.Seed = int64(i % 3)
			st, resp := submit(t, url, req)
			if st == nil {
				t.Errorf("submit %d rejected: HTTP %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, id := range ids {
		if st := waitDone(t, url, id); st.State != api.StateDone {
			t.Errorf("job %s ended %q: %+v", id, st.State, st.Error)
		}
	}
}

func TestDeterministicPlans(t *testing.T) {
	// Two NoWarmStart jobs with identical seeds must return
	// byte-identical plan documents, regardless of daemon state in
	// between.
	_, url := newTestServer(t, Config{Workers: 2})

	run := func(seed int64) []byte {
		req := smallJob(seed)
		req.NoWarmStart = true
		st, resp := submit(t, url, req)
		if st == nil {
			t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
		}
		done := waitDone(t, url, st.ID)
		if done.State != api.StateDone {
			t.Fatalf("job ended %q: %+v", done.State, done.Error)
		}
		data, err := json.Marshal(done.Plan)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	a := run(42)
	// An unrelated job in between perturbs daemon state (cache, pool).
	other, _ := submit(t, url, smallJob(7))
	if other != nil {
		waitDone(t, url, other.ID)
	}
	b := run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("plans differ:\n%s\n%s", a, b)
	}
}

func TestWarmStartCacheHit(t *testing.T) {
	s, url := newTestServer(t, Config{Workers: 1})

	first, resp := submit(t, url, smallJob(1))
	if first == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	if st := waitDone(t, url, first.ID); st.CacheHit {
		t.Fatal("first job cannot hit the cache")
	}

	second, resp := submit(t, url, smallJob(2))
	if second == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	st := waitDone(t, url, second.ID)
	if !st.CacheHit {
		t.Fatal("same-structure resubmission should warm-start from the cache")
	}
	hits, misses := s.cache.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different structure misses.
	req := smallJob(3)
	req.Workflow.Synthetic.Nodes = 30
	third, resp := submit(t, url, req)
	if third == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	if st := waitDone(t, url, third.ID); st.CacheHit {
		t.Fatal("different structure must not hit the cache")
	}
}

func TestExecuteAttachesProvenance(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	req := smallJob(5)
	req.Execute = true
	st, resp := submit(t, url, req)
	if st == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	done := waitDone(t, url, st.ID)
	if done.State != api.StateDone {
		t.Fatalf("job ended %q: %+v", done.State, done.Error)
	}
	if len(done.Provenance) != done.Activations {
		t.Fatalf("provenance records %d, want %d", len(done.Provenance), done.Activations)
	}
	if done.ExecMakespanSeconds <= 0 {
		t.Fatal("executed job should report a makespan")
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	st, resp := submit(t, url, smallJob(1))
	if st == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	waitDone(t, url, st.ID)

	hresp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", hresp.StatusCode)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	body := buf.String()
	for _, want := range []string{
		"reassign_episodes_total 5",
		"schedd_jobs_submitted_total 1",
		"schedd_jobs_completed_total 1",
		"schedd_qtable_cache_misses_total 1",
		"schedd_engine_pool_fresh_total",
		"schedd_job_latency_seconds_p99",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSchemaVersionRejected(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	req := smallJob(1)
	req.SchemaVersion = "v9"
	st, resp := submit(t, url, req)
	if st != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v9 submit: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestShutdownRejectsSubmits(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, resp := submit(t, ts.URL, smallJob(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: HTTP %d, want 503", resp.StatusCode)
	}
}
