package schedd

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"reassign/internal/api"
	"reassign/internal/metrics"
)

// latencyRing is a bounded window over the most recent latency
// samples. The daemon used to append every finish to an unbounded
// slice — harmless in a load test, a slow leak in a long-running
// service. The ring keeps the last cap(buf) samples: percentiles
// become "over the recent window", which is also the more useful
// operational quantity. Not safe for concurrent use; callers hold
// their own lock.
type latencyRing struct {
	buf  []float64
	next int // overwrite cursor once full
}

func newLatencyRing(window int) *latencyRing {
	return &latencyRing{buf: make([]float64, 0, window)}
}

func (r *latencyRing) add(v float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// snapshot copies the window into dst (sample order is immaterial to
// metrics.Summarize).
func (r *latencyRing) snapshot(dst []float64) []float64 {
	return append(dst[:0], r.buf...)
}

func (r *latencyRing) n() int { return len(r.buf) }

// DefaultTenant is the accounting label for submissions that carry no
// tenant.
const DefaultTenant = "default"

// tenantStats is one tenant's live accounting: lifecycle counters,
// queue occupancy gauges, deadline outcomes and a bounded latency
// window.
type tenantStats struct {
	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64

	queued  int64
	running int64

	deadlineHits   int64
	deadlineMisses int64

	lat *latencyRing
}

// tenantTracker aggregates per-tenant series for /metrics. All
// transitions take the tracker lock; the daemon's request rate is
// nowhere near making that contended.
type tenantTracker struct {
	mu      sync.Mutex
	window  int
	tenants map[string]*tenantStats
}

func newTenantTracker(window int) *tenantTracker {
	return &tenantTracker{window: window, tenants: make(map[string]*tenantStats)}
}

// tenantLabel normalises a submission's tenant for accounting.
func tenantLabel(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

func (tt *tenantTracker) get(name string) *tenantStats {
	ts := tt.tenants[name]
	if ts == nil {
		ts = &tenantStats{lat: newLatencyRing(tt.window)}
		tt.tenants[name] = ts
	}
	return ts
}

// enqueued records an accepted submission.
func (tt *tenantTracker) enqueued(tenant string) {
	tt.mu.Lock()
	ts := tt.get(tenant)
	ts.submitted++
	ts.queued++
	tt.mu.Unlock()
}

// rejected records a queue-full rejection.
func (tt *tenantTracker) rejected(tenant string) {
	tt.mu.Lock()
	tt.get(tenant).rejected++
	tt.mu.Unlock()
}

// started records a queued job beginning execution.
func (tt *tenantTracker) started(tenant string) {
	tt.mu.Lock()
	ts := tt.get(tenant)
	ts.queued--
	ts.running++
	tt.mu.Unlock()
}

// finished records a terminal state. ran distinguishes jobs settled
// from running (worker finished or mid-run cancel) from jobs settled
// straight out of the queue (canceled while queued). deadline is the
// submission's SLA hint in seconds (0 = none).
func (tt *tenantTracker) finished(tenant, state string, latency, deadline float64, ran bool) {
	tt.mu.Lock()
	ts := tt.get(tenant)
	if ran {
		ts.running--
	} else {
		ts.queued--
	}
	switch state {
	case api.StateDone:
		ts.completed++
	case api.StateCanceled:
		ts.canceled++
	default:
		ts.failed++
	}
	ts.lat.add(latency)
	if deadline > 0 {
		if latency <= deadline {
			ts.deadlineHits++
		} else {
			ts.deadlineMisses++
		}
	}
	tt.mu.Unlock()
}

// writeProm emits the per-tenant series in Prometheus text form, one
// labeled sample per tenant per metric, tenants in sorted order so the
// output is stable.
func (tt *tenantTracker) writeProm(w io.Writer) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if len(tt.tenants) == 0 {
		return
	}
	names := make([]string, 0, len(tt.tenants))
	for name := range tt.tenants {
		names = append(names, name)
	}
	sort.Strings(names)

	series := func(metric, typ, help string, value func(*tenantStats) (float64, bool)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		for _, name := range names {
			if v, ok := value(tt.tenants[name]); ok {
				fmt.Fprintf(w, "%s{tenant=%q} %v\n", metric, name, v)
			}
		}
	}
	count := func(v int64) (float64, bool) { return float64(v), true }
	series("schedd_tenant_jobs_submitted_total", "counter", "Jobs admitted per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.submitted) })
	series("schedd_tenant_jobs_completed_total", "counter", "Jobs finished successfully per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.completed) })
	series("schedd_tenant_jobs_failed_total", "counter", "Jobs failed per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.failed) })
	series("schedd_tenant_jobs_canceled_total", "counter", "Jobs canceled per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.canceled) })
	series("schedd_tenant_jobs_rejected_total", "counter", "Queue-full rejections per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.rejected) })
	series("schedd_tenant_jobs_queued", "gauge", "Jobs waiting in the admission queue per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.queued) })
	series("schedd_tenant_jobs_running", "gauge", "Jobs executing per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.running) })
	series("schedd_tenant_deadline_hits_total", "counter", "Jobs finished within their deadline hint per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.deadlineHits) })
	series("schedd_tenant_deadline_misses_total", "counter", "Jobs that overran their deadline hint per tenant",
		func(ts *tenantStats) (float64, bool) { return count(ts.deadlineMisses) })

	// Latency percentiles over each tenant's bounded window.
	sums := make(map[string]metrics.Summary, len(names))
	for _, name := range names {
		sums[name] = metrics.Summarize(tt.tenants[name].lat.snapshot(nil))
	}
	for _, m := range []struct {
		suffix string
		help   string
		value  func(metrics.Summary) float64
	}{
		{"p50", "Per-tenant submit-to-finish latency (median, recent window)", func(s metrics.Summary) float64 { return s.P50 }},
		{"p95", "Per-tenant submit-to-finish latency (95th percentile, recent window)", func(s metrics.Summary) float64 { return s.P95 }},
		{"p99", "Per-tenant submit-to-finish latency (99th percentile, recent window)", func(s metrics.Summary) float64 { return s.P99 }},
	} {
		metric := "schedd_tenant_job_latency_seconds_" + m.suffix
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", metric, m.help, metric)
		for _, name := range names {
			if s := sums[name]; s.N > 0 {
				fmt.Fprintf(w, "%s{tenant=%q} %v\n", metric, name, m.value(s))
			}
		}
	}
}
