package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reassign/internal/api"
	"reassign/internal/core"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// TestSubmitRollbackStorm hammers a full admission queue with
// concurrent submissions while accepted jobs keep registering. The
// old rollback blindly truncated the order slice's tail, so a
// rejected submission racing an accepted one could orphan the
// accepted job's registry entry; removal by ID keeps the registry
// consistent. Run with -race to catch the interleaving.
func TestSubmitRollbackStorm(t *testing.T) {
	// A tight queue with workers actively draining it: slots free up
	// mid-storm, so a submission can register, lose its slot to a
	// later-registered one, and roll back while the winner sits at the
	// registry tail — exactly the interleaving blind truncation
	// corrupts.
	s, url := newTestServer(t, Config{Workers: 2, QueueDepth: 1})

	tiny := func(seed int64) api.SubmitRequest {
		req := smallJob(seed)
		req.Workflow = api.WorkflowSpec{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: 10, Seed: 1}}
		req.Learn = api.LearnSpec{Episodes: 1}
		return req
	}
	const storm = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []string
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			st, r := submit(t, url, tiny(seed))
			if st != nil {
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
			} else if r.StatusCode != http.StatusTooManyRequests {
				t.Errorf("rejection was HTTP %d, want 429", r.StatusCode)
			}
		}(int64(i))
	}
	wg.Wait()

	// Registry integrity: order and jobs agree exactly, no duplicates,
	// no dangling IDs, and every accepted job is still registered.
	s.mu.Lock()
	if len(s.order) != len(s.jobs) {
		s.mu.Unlock()
		t.Fatalf("order has %d entries, jobs map %d", len(s.order), len(s.jobs))
	}
	seen := make(map[string]bool, len(s.order))
	for _, id := range s.order {
		if seen[id] {
			s.mu.Unlock()
			t.Fatalf("duplicate id %s in order", id)
		}
		seen[id] = true
		if s.jobs[id] == nil {
			s.mu.Unlock()
			t.Fatalf("order references unregistered job %s", id)
		}
	}
	s.mu.Unlock()
	for _, id := range accepted {
		if st := getStatus(t, url, id); st.ID != id {
			t.Fatalf("accepted job %s lost from registry", id)
		}
	}
	if want := int64(storm - len(accepted)); s.rejected.Load() != want {
		t.Fatalf("rejected counter %d, want %d", s.rejected.Load(), want)
	}
}

// TestSubmitRollbackInterleaved forces the exact interleaving the
// storm only hits probabilistically: submission R registers first,
// then stalls while submission A registers behind it and wins the
// last queue slot; R is rejected and rolls back. The old blind tail
// truncation removed A's registry entry instead of R's, leaving R
// dangling in the order slice.
func TestSubmitRollbackInterleaved(t *testing.T) {
	// No workers started: the queue (depth 1) is never drained, so
	// whoever sends first wins the only slot.
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rStalled := make(chan struct{})
	release := make(chan struct{})
	var claimed atomic.Bool
	s.testSubmitHook = func(*job) {
		// Only the first submission (R) stalls; A passes straight
		// through to the queue send (a sync.Once would block A until
		// R's stalled hook returned).
		if claimed.CompareAndSwap(false, true) {
			close(rStalled)
			<-release
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var rResp submitResp
	go func() {
		defer wg.Done()
		_, rResp = submit(t, ts.URL, smallJob(1))
	}()
	<-rStalled

	// A registers behind R and takes the slot.
	a, resp := submit(t, ts.URL, smallJob(2))
	if a == nil {
		t.Fatalf("second submit rejected: HTTP %d", resp.StatusCode)
	}
	close(release)
	wg.Wait()
	if rResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stalled submit: HTTP %d, want 429", rResp.StatusCode)
	}

	// R's rollback must have removed R, not A.
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) != 1 || s.order[0] != a.ID {
		t.Fatalf("order = %v, want exactly the accepted job %s", s.order, a.ID)
	}
	if s.jobs[a.ID] == nil {
		t.Fatalf("accepted job %s missing from registry", a.ID)
	}
	if len(s.jobs) != 1 {
		t.Fatalf("registry holds %d jobs, want 1", len(s.jobs))
	}
}

// TestCancelDuringReplay pins the replay path's cancellation: a plan
// replay whose context is already canceled must abort inside the
// simulation with context.Canceled instead of running to completion.
// Before the fix the replay ignored its context entirely.
func TestCancelDuringReplay(t *testing.T) {
	s := New(Config{})
	req := smallJob(1)
	w, err := req.Workflow.Build()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := req.Fleet.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := &sched.HEFT{}
	if _, err := sim.Run(w, fleet, h, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	req.Plan = api.NewPlanDocument(w.Name, fleet.Name, 1, core.NewPlan(h.Assign()))

	j := &job{id: "replay", req: req, tenant: DefaultTenant, w: w, fleet: fleet,
		state: api.StateQueued, submitted: time.Now()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.execute(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled replay returned %v, want context.Canceled", err)
	}

	// An uncanceled context replays normally.
	if err := s.execute(context.Background(), j); err != nil {
		t.Fatalf("live replay failed: %v", err)
	}
}

func TestLatencyRingBounds(t *testing.T) {
	r := newLatencyRing(4)
	for i := 0; i < 10; i++ {
		r.add(float64(i))
	}
	if r.n() != 4 {
		t.Fatalf("ring holds %d samples, want 4", r.n())
	}
	got := r.snapshot(nil)
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	// The last four samples are 6..9 regardless of storage order.
	if sum != 6+7+8+9 {
		t.Fatalf("ring kept %v, want the newest four samples", got)
	}
}

// TestLatencyWindowBounded runs more jobs than the configured window
// and checks the daemon retains only the window (the old unbounded
// slice grew forever in a long-lived daemon).
func TestLatencyWindowBounded(t *testing.T) {
	s, url := newTestServer(t, Config{Workers: 2, LatencyWindow: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		st, resp := submit(t, url, smallJob(int64(i)))
		if st == nil {
			t.Fatalf("submit %d rejected: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, url, id)
	}
	s.mu.Lock()
	n := s.lat.n()
	s.mu.Unlock()
	if n != 3 {
		t.Fatalf("latency window holds %d samples, want 3", n)
	}
	// /metrics still summarises the window.
	body := fetchMetrics(t, url)
	if !strings.Contains(body, "schedd_job_latency_seconds_p50") {
		t.Fatal("latency summary missing from /metrics")
	}
}

// TestOversizedBody413 pins the typed over-limit error: a body beyond
// MaxBodyBytes must return 413 with CodeTooLarge, not a generic 400.
func TestOversizedBody413(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256})
	// Valid JSON longer than the limit, so the decoder is reading
	// clean syntax when the byte cap trips mid-stream.
	blob := []byte(`{"pad":"` + strings.Repeat("x", 512) + `"}`)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeTooLarge {
		t.Fatalf("error code %q, want %q", apiErr.Code, api.CodeTooLarge)
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})
	req := smallJob(1)
	req.DeadlineSeconds = -5
	st, resp := submit(t, url, req)
	if st != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: HTTP %d, want 400", resp.StatusCode)
	}
	if resp.Err == nil || resp.Err.Field != "deadline_seconds" {
		t.Fatalf("error body %+v", resp.Err)
	}
}

// TestTenantTracking submits jobs under named tenants with deadline
// hints and checks the per-tenant accounting: JobStatus echoes the
// tenant and deadline outcome, and /metrics exports labeled series.
func TestTenantTracking(t *testing.T) {
	s, url := newTestServer(t, Config{Workers: 2})

	acme := smallJob(1)
	acme.Tenant = "acme"
	acme.DeadlineSeconds = 1e-9 // unmeetable: any real run overshoots
	a, resp := submit(t, url, acme)
	if a == nil {
		t.Fatalf("acme submit rejected: HTTP %d", resp.StatusCode)
	}
	b, resp := submit(t, url, smallJob(2)) // anonymous → "default"
	if b == nil {
		t.Fatalf("default submit rejected: HTTP %d", resp.StatusCode)
	}

	aDone := waitDone(t, url, a.ID)
	waitDone(t, url, b.ID)
	if aDone.Tenant != "acme" || aDone.DeadlineSeconds != 1e-9 {
		t.Fatalf("status lost tenant/deadline: %+v", aDone)
	}
	if !aDone.DeadlineMissed {
		t.Fatal("nanosecond deadline should be missed")
	}

	body := fetchMetrics(t, url)
	for _, want := range []string{
		`schedd_tenant_jobs_submitted_total{tenant="acme"} 1`,
		`schedd_tenant_jobs_submitted_total{tenant="default"} 1`,
		`schedd_tenant_jobs_completed_total{tenant="acme"} 1`,
		`schedd_tenant_deadline_misses_total{tenant="acme"} 1`,
		`schedd_tenant_jobs_running{tenant="acme"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Gauges settled back to zero.
	s.tenants.mu.Lock()
	for name, ts := range s.tenants.tenants {
		if ts.queued != 0 || ts.running != 0 {
			t.Errorf("tenant %s gauges not settled: queued=%d running=%d", name, ts.queued, ts.running)
		}
	}
	s.tenants.mu.Unlock()
}

func fetchMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}
