package schedd

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"reassign/internal/api"
)

// marketJob is a fast-learning submission that executes over a
// hostile market trace (short horizon so kills land mid-run).
func marketJob(seed int64) api.SubmitRequest {
	req := smallJob(seed)
	req.Execute = true
	req.Market = &api.MarketSpec{Regime: "hostile", Horizon: 600}
	return req
}

func TestSubmitMarketValidation(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})

	// Market without execute is rejected.
	req := smallJob(1)
	req.Market = &api.MarketSpec{Regime: "stable"}
	if _, resp := submit(t, url, req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("market without execute: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown regime is rejected.
	req = smallJob(1)
	req.Execute = true
	req.Market = &api.MarketSpec{Regime: "sunny"}
	if _, resp := submit(t, url, req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown regime: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestMarketJobMetrics runs a market execution through the daemon and
// checks the job status carries the traced bill and that /metrics
// exports the per-provider market series.
func TestMarketJobMetrics(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})

	st, resp := submit(t, url, marketJob(9))
	if st == nil {
		t.Fatalf("submit rejected: HTTP %d (%v)", resp.StatusCode, resp.Err)
	}
	done := waitDone(t, url, st.ID)
	if done.State != api.StateDone {
		t.Fatalf("job ended %s: %+v", done.State, done.Error)
	}
	if done.MarketCostUSD <= 0 {
		t.Fatalf("market job carries no bill: %+v", done.MarketCostUSD)
	}
	if done.ExecMakespanSeconds <= 0 || len(done.Provenance) == 0 {
		t.Fatal("market job missing execution results")
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	blob, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)
	for _, want := range []string{
		"schedd_market_runs_total 1",
		"schedd_market_cost_usd_total{provider=",
		"schedd_market_cordoned_vms",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The hostile regime over 600s virtually always draws at least one
	// notice; if it did, the labeled counters must be present.
	if done.Preemptions > 0 && !strings.Contains(body, "schedd_market_revocations_total{provider=") {
		t.Error("/metrics missing per-provider revocation counter despite preemptions")
	}
}

// TestMarketJobDeterministic submits the same market job twice with
// NoWarmStart: the traced bill and preemption count must match
// exactly (trace generation and replay are seed-deterministic).
func TestMarketJobDeterministic(t *testing.T) {
	_, url := newTestServer(t, Config{Workers: 1})

	req := marketJob(21)
	req.NoWarmStart = true
	a, resp := submit(t, url, req)
	if a == nil {
		t.Fatalf("submit rejected: HTTP %d", resp.StatusCode)
	}
	doneA := waitDone(t, url, a.ID)
	b, _ := submit(t, url, req)
	doneB := waitDone(t, url, b.ID)
	if doneA.State != api.StateDone || doneB.State != api.StateDone {
		t.Fatalf("states %s/%s", doneA.State, doneB.State)
	}
	if doneA.MarketCostUSD != doneB.MarketCostUSD {
		t.Fatalf("bills differ: %v vs %v", doneA.MarketCostUSD, doneB.MarketCostUSD)
	}
	if doneA.Preemptions != doneB.Preemptions {
		t.Fatalf("preemptions differ: %d vs %d", doneA.Preemptions, doneB.Preemptions)
	}
	if doneA.ExecMakespanSeconds != doneB.ExecMakespanSeconds {
		t.Fatalf("makespans differ: %v vs %v", doneA.ExecMakespanSeconds, doneB.ExecMakespanSeconds)
	}
}
