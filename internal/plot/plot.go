// Package plot renders simple SVG line charts with the standard
// library only — used for ReASSIgN learning curves and parameter
// sweeps. It is deliberately small: numeric X/Y series, linear axes
// with tick labels, a legend, and nothing else.
package plot

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a set of series over shared axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// seriesColor assigns stable colours by index.
func seriesColor(i int) string {
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	return palette[i%len(palette)]
}

// bounds computes the data range across all series.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
			ok = true
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, ok
}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG() string {
	const (
		width   = 720.0
		height  = 400.0
		left    = 70.0
		right   = 20.0
		top     = 36.0
		bottom  = 50.0
		plotW   = width - left - right
		plotH   = height - top - bottom
		nTicks  = 5
		tickLen = 5.0
	)
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif" font-size="12">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="%.0f" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n",
		width/2, html.EscapeString(c.Title))
	if !ok {
		b.WriteString(`<text x="60" y="200">no data</text></svg>` + "\n")
		return b.String()
	}
	xOf := func(x float64) float64 { return left + (x-xmin)/(xmax-xmin)*plotW }
	yOf := func(y float64) float64 { return top + plotH - (y-ymin)/(ymax-ymin)*plotH }

	// Frame and ticks.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
		left, top, plotW, plotH)
	for i := 0; i <= nTicks; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/nTicks
		px := xOf(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999"/>`+"\n",
			px, top+plotH, px, top+plotH+tickLen)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px, top+plotH+18, formatTick(fx))
		fy := ymin + (ymax-ymin)*float64(i)/nTicks
		py := yOf(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999"/>`+"\n",
			left-tickLen, py, left, py)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			left-8, py+4, formatTick(fy))
	}
	fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-10, html.EscapeString(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, html.EscapeString(c.YLabel))

	// Series polylines + legend.
	for si, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		if n == 0 {
			continue
		}
		var pts []string
		for i := 0; i < n; i++ {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xOf(s.X[i]), yOf(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), seriesColor(si))
		ly := top + 14 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			left+plotW-110, ly-4, left+plotW-90, ly-4, seriesColor(si))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n",
			left+plotW-85, ly, html.EscapeString(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Smooth returns a centred moving average of ys with the given
// half-window (window = 2h+1), shrinking at the edges — handy for
// noisy learning curves.
func Smooth(ys []float64, h int) []float64 {
	if h <= 0 || len(ys) == 0 {
		return append([]float64(nil), ys...)
	}
	out := make([]float64, len(ys))
	for i := range ys {
		lo, hi := i-h, i+h
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ys) {
			hi = len(ys) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += ys[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
