package plot

import (
	"encoding/xml"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func wellFormed(t testing.TB, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		tok, err := dec.Token()
		if tok == nil {
			return
		}
		if err != nil {
			t.Fatalf("svg not well-formed: %v", err)
		}
	}
}

func TestSVGBasics(t *testing.T) {
	c := &Chart{
		Title:  "learning curve",
		XLabel: "episode",
		YLabel: "makespan (s)",
		Series: []Series{
			{Name: "raw", X: []float64{0, 1, 2, 3}, Y: []float64{800, 700, 650, 640}},
			{Name: "smooth", X: []float64{0, 1, 2, 3}, Y: []float64{780, 720, 660, 645}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	for _, want := range []string{"learning curve", "episode", "makespan", "raw", "smooth", "polyline"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
}

func TestSVGEmptyChart(t *testing.T) {
	svg := (&Chart{Title: "empty"}).SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "no data") {
		t.Fatal("empty chart not flagged")
	}
}

func TestSVGEscapesContent(t *testing.T) {
	c := &Chart{
		Title:  `<script>&`,
		Series: []Series{{Name: "<s>", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	// Degenerate ranges (all-equal X or Y) must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate range produced NaN/Inf coordinates")
	}
}

func TestMismatchedSeriesLengths(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "odd", X: []float64{0, 1, 2}, Y: []float64{1, 2}}}}
	svg := c.SVG()
	wellFormed(t, svg)
}

func TestSmooth(t *testing.T) {
	ys := []float64{0, 10, 0, 10, 0}
	out := Smooth(ys, 1)
	if len(out) != len(ys) {
		t.Fatalf("len = %d", len(out))
	}
	// Middle points average their neighbours.
	if math.Abs(out[2]-20.0/3) > 1e-9 {
		t.Fatalf("out[2] = %v", out[2])
	}
	// h=0 copies.
	same := Smooth(ys, 0)
	for i := range ys {
		if same[i] != ys[i] {
			t.Fatal("h=0 changed values")
		}
	}
	// The copy is independent.
	same[0] = 99
	if ys[0] == 99 {
		t.Fatal("Smooth returned aliased slice")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		50_000:    "50k",
		123:       "123",
		5:         "5",
		0.25:      "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

// Property: any finite data renders well-formed SVG without NaN/Inf.
func TestPropertyRendersFiniteData(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Series
		for i := 0; i < int(n)%64; i++ {
			s.X = append(s.X, rng.NormFloat64()*1e4)
			s.Y = append(s.Y, rng.NormFloat64()*1e4)
		}
		s.Name = "series"
		svg := (&Chart{Title: "p", Series: []Series{s}}).SVG()
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			return false
		}
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			tok, err := dec.Token()
			if tok == nil {
				return true
			}
			if err != nil {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Smooth preserves length, bounds, and the mean within
// tolerance for interior-heavy windows.
func TestPropertySmoothBounded(t *testing.T) {
	f := func(seed int64, n, hRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ys := make([]float64, int(n)%50+1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range ys {
			ys[i] = rng.Float64() * 100
			if ys[i] < lo {
				lo = ys[i]
			}
			if ys[i] > hi {
				hi = ys[i]
			}
		}
		out := Smooth(ys, int(hRaw)%5)
		if len(out) != len(ys) {
			return false
		}
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
