package des

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
	if s.Steps() != 0 {
		t.Fatalf("Steps() = %d, want 0", s.Steps())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", s.Now())
	}
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	s := New()
	var got []string
	s.AtPriority(1, 5, func() { got = append(got, "p5-first") })
	s.AtPriority(1, 1, func() { got = append(got, "p1") })
	s.AtPriority(1, 5, func() { got = append(got, "p5-second") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p1", "p5-first", "p5-second"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New()
	var at float64 = -1
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ref := s.At(1, func() { fired = true })
	if !ref.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if ref.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	s := New()
	ref := s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The event already ran; Cancel may return true or false but must
	// not panic or corrupt state. Current contract: still "pending"
	// flagged false only via canceled field, so we just ensure no panic.
	ref.Cancel()
}

func TestHorizonStopsRun(t *testing.T) {
	s := New()
	var got []float64
	for _, at := range []float64{1, 2, 3} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.SetHorizon(2)
	if err := s.Run(); err != ErrHorizon {
		t.Fatalf("Run() = %v, want ErrHorizon", err)
	}
	if len(got) != 2 {
		t.Fatalf("executed %d events, want 2", len(got))
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.SetHorizon(0) // remove bound
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("executed %d events after unbounding, want 3", len(got))
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	ran := false
	s.At(1, func() { ran = true })
	s.At(10, func() { t.Fatal("event beyond RunUntil bound fired") })
	s.RunUntil(5)
	if !ran {
		t.Fatal("event at t=1 did not run")
	}
	if s.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	s.At(1, nil)
}

func TestNaNTimePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	s.At(math.NaN(), func() {})
}

func TestReset(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	s.Step()
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Steps() != 0 {
		t.Fatalf("Reset left state now=%v pending=%d steps=%d", s.Now(), s.Pending(), s.Steps())
	}
}

func TestStepReturnsFalseOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestStepsCountsExecutedOnly(t *testing.T) {
	s := New()
	ref := s.At(1, func() {})
	s.At(2, func() {})
	ref.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", s.Steps())
	}
}

// Property: for any set of event times, execution order is the sorted
// order of the times (stable by insertion for equal times).
func TestPropertyExecutionOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r)
		}
		var got []float64
		for _, tm := range times {
			tm := tm
			s.At(tm, func() { got = append(got, tm) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		want := append([]float64(nil), times...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards during any run.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		last := -1.0
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if depth < 3 && rng.Intn(2) == 0 {
				s.After(rng.Float64()*10, func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < int(n)%32; i++ {
			s.At(rng.Float64()*100, func() { spawn(0) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical event traces, including
// dynamically scheduled events (determinism guarantee).
func TestPropertyDeterministicReplay(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var trace []float64
		var gen func(depth int)
		gen = func(depth int) {
			trace = append(trace, s.Now())
			if depth < 4 {
				for i := 0; i < rng.Intn(3); i++ {
					s.After(rng.Float64()*5, func() { gen(depth + 1) })
				}
			}
		}
		for i := 0; i < 5; i++ {
			s.At(rng.Float64()*10, func() { gen(0) })
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := make([]float64, 1024)
	for i := range times {
		times[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, tm := range times {
			s.At(tm, func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEveryRepeatsUntilFalse(t *testing.T) {
	s := New()
	var times []float64
	s.Every(2, func() bool {
		times = append(times, s.Now())
		return len(times) < 3
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := New()
	n := 0
	tk := s.Every(1, func() bool { n++; return true })
	// Stop mid-series, after a couple of ticks have fired.
	s.At(2.5, func() { tk.Stop() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("series ticked %d times, want 2 (stopped at t=2.5)", n)
	}
	tk.Stop() // idempotent
}

func TestEveryValidation(t *testing.T) {
	s := New()
	for _, f := range []func(){
		func() { s.Every(0, func() bool { return false }) },
		func() { s.Every(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Every accepted")
				}
			}()
			f()
		}()
	}
}

// Example drives a tiny simulation: two events and a periodic tick.
func Example() {
	s := New()
	s.At(1, func() { fmt.Println("first at", s.Now()) })
	s.Every(2, func() bool {
		fmt.Println("tick at", s.Now())
		return s.Now() < 4
	})
	if err := s.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// first at 1
	// tick at 2
	// tick at 4
}

func TestStatsCounters(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(float64(i+1), func() {})
	}
	st := s.Stats()
	if st.Scheduled != 5 || st.Steps != 0 {
		t.Fatalf("before run: %+v", st)
	}
	if st.MaxQueueDepth != 5 {
		t.Fatalf("MaxQueueDepth = %d, want 5", st.MaxQueueDepth)
	}
	// Nothing has executed yet, so nothing can have been recycled.
	if st.FreelistHits != 0 || st.FreelistMisses != 5 {
		t.Fatalf("freelist before run: %+v", st)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Executed events return to the freelist: the next schedules are
	// hits, and the high-water mark is unchanged.
	for i := 0; i < 3; i++ {
		s.At(s.Now()+float64(i+1), func() {})
	}
	st = s.Stats()
	if st.Steps != 5 || st.Scheduled != 8 {
		t.Fatalf("after run: %+v", st)
	}
	if st.FreelistHits != 3 || st.FreelistMisses != 5 {
		t.Fatalf("freelist after reschedule: %+v", st)
	}
	if got := st.FreelistHitRate(); got != 3.0/8 {
		t.Fatalf("FreelistHitRate = %v, want 0.375", got)
	}
	if st.MaxQueueDepth != 5 {
		t.Fatalf("MaxQueueDepth moved to %d", st.MaxQueueDepth)
	}
}

func TestStatsResetClears(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("Reset left stats %+v", got)
	}
}

func TestStatsZeroRate(t *testing.T) {
	if (Stats{}).FreelistHitRate() != 0 {
		t.Fatal("empty hit rate must be 0, not NaN")
	}
}
