package des

import (
	"math"
	"testing"
)

// FuzzKernel drives the kernel with a byte-coded op sequence —
// schedule, prioritized schedule, cancel, step, run-until, reset,
// periodic ticker — and checks the structural properties every
// consumer relies on:
//
//   - events execute in non-decreasing (time) order within a reset
//     epoch, never before their scheduled time;
//   - a Cancel that returned true really suppresses the handler;
//   - refs from before a Reset are stale: Cancel is a no-op returning
//     false, and freelist reuse (generation counters) never lets a
//     stale ref kill a recycled event.
func FuzzKernel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 3, 2, 0, 3, 0})
	f.Add([]byte{0, 10, 0, 20, 5, 0, 0, 1, 3, 0, 3, 0})
	f.Add([]byte{1, 4, 1, 4, 1, 4, 4, 50, 2, 1, 6, 3, 3, 0})
	f.Add([]byte{0, 2, 5, 0, 2, 0, 0, 1, 2, 0, 4, 200})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := New()
		type tracked struct {
			ref      EventRef
			at       float64
			epoch    int
			fired    bool
			canceled bool // Cancel() returned true
			dropped  bool // pending at a Reset
		}
		var events []*tracked
		epoch := 0
		lastFire := math.Inf(-1)
		lastEpoch := 0

		schedule := func(at float64, prio int) {
			ev := &tracked{at: at, epoch: epoch}
			fn := func() {
				if ev.canceled {
					t.Fatalf("canceled event fired at %v", s.Now())
				}
				if ev.dropped {
					t.Fatalf("event dropped by Reset fired at %v", s.Now())
				}
				if ev.fired {
					t.Fatalf("event fired twice at %v", s.Now())
				}
				ev.fired = true
				if s.Now() != ev.at {
					t.Fatalf("event scheduled for %v fired at %v", ev.at, s.Now())
				}
				if ev.epoch == lastEpoch && s.Now() < lastFire {
					t.Fatalf("clock went backwards: %v after %v", s.Now(), lastFire)
				}
				lastFire, lastEpoch = s.Now(), ev.epoch
			}
			if prio == 0 {
				ev.ref = s.At(at, fn)
			} else {
				ev.ref = s.AtPriority(at, prio, fn)
			}
			events = append(events, ev)
		}

		ticks := 0
		for i := 0; i+1 < len(ops) && len(events) < 256; i += 2 {
			op, arg := ops[i]%7, float64(ops[i+1])
			switch op {
			case 0:
				schedule(s.Now()+arg/4, 0)
			case 1:
				schedule(s.Now()+arg/4, int(ops[i+1]%5)-2)
			case 2:
				if len(events) == 0 {
					continue
				}
				ev := events[int(arg)%len(events)]
				got := ev.ref.Cancel()
				switch {
				case got && (ev.fired || ev.canceled || ev.dropped):
					t.Fatalf("Cancel returned true for a fired/canceled/stale event (generation reuse?)")
				case got:
					ev.canceled = true
				}
			case 3:
				s.Step()
			case 4:
				s.RunUntil(s.Now() + arg/2)
			case 5:
				for _, ev := range events {
					if !ev.fired && !ev.canceled {
						ev.dropped = true
					}
				}
				s.Reset()
				epoch++
				lastFire = math.Inf(-1)
			case 6:
				if ticks < 3 { // bound periodic load so the drain terminates
					n := 0
					s.Every(arg/4+0.5, func() bool {
						n++
						return n < 4
					})
					ticks++
				}
			}
		}
		if err := s.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}

		for i, ev := range events {
			switch {
			case ev.canceled && ev.fired:
				t.Fatalf("event %d both canceled and fired", i)
			case ev.dropped && ev.fired:
				t.Fatalf("event %d dropped by Reset but fired", i)
			case !ev.canceled && !ev.dropped && !ev.fired:
				t.Fatalf("event %d (t=%v) never fired and was never canceled", i, ev.at)
			}
			// Post-drain, every ref is dead: Cancel must refuse.
			if ev.ref.Cancel() {
				t.Fatalf("event %d: Cancel succeeded after the queue drained", i)
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("%d events pending after drain", s.Pending())
		}
	})
}
