// Package des implements a small deterministic discrete-event
// simulation kernel: a virtual clock and a future-event list.
//
// The kernel is the substrate for the WorkflowSim-equivalent cloud
// simulator (package sim). It is intentionally minimal: events are
// closures scheduled at absolute virtual times; ties are broken first
// by an integer priority and then by insertion order, so a simulation
// driven only by a seeded random source is bit-for-bit reproducible.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is the body of a scheduled event. It runs with the
// simulation clock set to the event's time and may schedule further
// events.
type Handler func()

// ErrHorizon is returned by Run when the simulation stops because the
// configured time horizon was reached while events remained pending.
var ErrHorizon = errors.New("des: time horizon reached with pending events")

// ErrInterrupted is wrapped by the error Run returns after Interrupt
// was called without a cause.
var ErrInterrupted = errors.New("des: run interrupted")

// event is one entry in the future-event list. Executed events are
// recycled through the simulator's free list; gen increments on each
// recycle so stale EventRefs become no-ops instead of touching the
// event's next incarnation.
type event struct {
	time     float64
	priority int   // lower runs first among equal times
	seq      int64 // insertion order; breaks remaining ties
	gen      uint64
	fn       Handler
	canceled bool
}

// eventQueue is a min-heap over (time, priority, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// EventRef identifies a scheduled event so it can be canceled.
type EventRef struct {
	ev  *event
	gen uint64
}

// Cancel marks the referenced event so it will not run. Canceling an
// already-run or already-canceled event is a no-op. Cancel reports
// whether the event was still pending.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.gen != r.gen || r.ev.canceled {
		return false
	}
	r.ev.canceled = true
	return true
}

// Simulator owns the virtual clock and the future-event list.
// The zero value is not usable; call New.
type Simulator struct {
	now     float64
	queue   eventQueue
	seq     int64
	horizon float64 // 0 means unbounded
	steps   int64   // events executed
	running bool
	stopErr error    // set by Interrupt; Run returns it before the next event
	free    []*event // recycled events, reused by AtPriority

	// Kernel counters (see Stats): freelist reuse and the queue's
	// high-water mark. seq doubles as the scheduled-event count.
	freeHits   int64
	freeMisses int64
	maxDepth   int
}

// Stats are the kernel's instrumentation counters, cheap enough to
// maintain unconditionally (plain integer bumps on the scheduling
// path).
type Stats struct {
	// Steps counts events executed; Scheduled counts events queued
	// (executed + canceled + still pending).
	Steps     int64
	Scheduled int64
	// FreelistHits counts event schedules served by recycling an
	// executed event; FreelistMisses counts fresh allocations.
	FreelistHits   int64
	FreelistMisses int64
	// MaxQueueDepth is the future-event list's high-water mark.
	MaxQueueDepth int
}

// FreelistHitRate returns the fraction of schedules served from the
// freelist (0 when nothing was scheduled).
func (s Stats) FreelistHitRate() float64 {
	total := s.FreelistHits + s.FreelistMisses
	if total == 0 {
		return 0
	}
	return float64(s.FreelistHits) / float64(total)
}

// Stats returns the kernel counters accumulated since New (or the
// last Reset).
func (s *Simulator) Stats() Stats {
	return Stats{
		Steps:          s.steps,
		Scheduled:      s.seq,
		FreelistHits:   s.freeHits,
		FreelistMisses: s.freeMisses,
		MaxQueueDepth:  s.maxDepth,
	}
}

// New returns an empty simulator with the clock at zero and no
// horizon.
func New() *Simulator {
	return &Simulator{horizon: math.Inf(1)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() int64 { return s.steps }

// Pending returns the number of events still scheduled (including
// canceled events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// SetHorizon bounds Run: the simulation stops (with ErrHorizon) before
// executing any event strictly later than t. A non-positive t removes
// the bound.
func (s *Simulator) SetHorizon(t float64) {
	if t <= 0 {
		s.horizon = math.Inf(1)
		return
	}
	s.horizon = t
}

// Interrupt makes Run stop before executing any further event,
// returning err (ErrInterrupted when err is nil). It is meant to be
// called from inside an event handler — e.g. when a wrapping context
// is canceled — and leaves pending events queued; a later Reset
// clears both them and the stop cause.
func (s *Simulator) Interrupt(err error) {
	if err == nil {
		err = ErrInterrupted
	}
	s.stopErr = err
}

// At schedules fn at absolute virtual time t with priority 0.
// Scheduling in the past panics: it is always a logic error in a
// discrete-event model.
func (s *Simulator) At(t float64, fn Handler) EventRef {
	return s.AtPriority(t, 0, fn)
}

// AtPriority schedules fn at absolute time t. Among events with equal
// time, lower priority runs first; equal priorities run in insertion
// order.
func (s *Simulator) AtPriority(t float64, priority int, fn Handler) EventRef {
	if fn == nil {
		panic("des: nil handler")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: schedule at NaN")
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.time, ev.priority, ev.seq, ev.fn, ev.canceled = t, priority, s.seq, fn, false
		s.freeHits++
	} else {
		ev = &event{time: t, priority: priority, seq: s.seq, fn: fn}
		s.freeMisses++
	}
	heap.Push(&s.queue, ev)
	if len(s.queue) > s.maxDepth {
		s.maxDepth = len(s.queue)
	}
	return EventRef{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the free list, invalidating any
// outstanding EventRefs to it.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	s.free = append(s.free, ev)
}

// After schedules fn delay time units from now (priority 0).
func (s *Simulator) After(delay float64, fn Handler) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Step executes the earliest pending event, advancing the clock.
// It reports whether an event was executed (false when the queue is
// empty or only canceled events remain).
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		s.now = ev.time
		s.steps++
		fn := ev.fn
		// Recycle before running: outstanding refs to this event are
		// already dead, and the handler may schedule into the slot.
		s.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the horizon is hit.
// It returns nil on a drained queue and ErrHorizon otherwise.
func (s *Simulator) Run() error {
	if s.running {
		panic("des: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.stopErr == nil && len(s.queue) > 0 {
		// Peek without popping so a horizon stop leaves the event
		// pending.
		next := s.queue[0]
		if next.canceled {
			s.recycle(heap.Pop(&s.queue).(*event))
			continue
		}
		if next.time > s.horizon {
			return ErrHorizon
		}
		s.Step()
	}
	// An interrupt is honoured even when the interrupting event was
	// the last one queued; the stop reason is consumed either way.
	if err := s.stopErr; err != nil {
		s.stopErr = nil
		return err
	}
	return nil
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t (even if no event was pending there). Events after t stay
// queued.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.canceled {
			s.recycle(heap.Pop(&s.queue).(*event))
			continue
		}
		if next.time > t {
			break
		}
		s.Step()
	}
	s.now = t
}

// Reset empties the queue and rewinds the clock to zero, clearing the
// kernel counters. Event references from before the reset become
// stale no-ops. Pending events are recycled into the free list and the
// queue's backing array is kept, so a reset simulator re-runs without
// re-allocating its event pool (the sim.Engine.Reset episode loop).
func (s *Simulator) Reset() {
	for _, ev := range s.queue {
		s.recycle(ev)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.steps = 0
	s.stopErr = nil
	s.freeHits = 0
	s.freeMisses = 0
	s.maxDepth = 0
}

// Ticker is a periodic event series created by Every.
type Ticker struct {
	stopped bool
	next    EventRef
}

// Stop ends the series; the pending occurrence is canceled. Stopping
// twice is a no-op.
func (t *Ticker) Stop() {
	t.stopped = true
	t.next.Cancel()
}

// Every schedules fn at now+interval, now+2·interval, … until fn
// returns false, the ticker is stopped, or the simulation drains.
func (s *Simulator) Every(interval float64, fn func() bool) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("des: non-positive interval %v", interval))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	t := &Ticker{}
	var tick Handler
	tick = func() {
		if t.stopped || !fn() {
			return
		}
		t.next = s.After(interval, tick)
	}
	t.next = s.After(interval, tick)
	return t
}
