package des

import (
	"errors"
	"testing"
)

func TestInterruptStopsRun(t *testing.T) {
	s := New()
	var ran []int
	s.At(1, func() { ran = append(ran, 1) })
	s.At(2, func() {
		ran = append(ran, 2)
		s.Interrupt(nil)
	})
	s.At(3, func() { ran = append(ran, 3) })

	err := s.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run returned %v, want ErrInterrupted", err)
	}
	if len(ran) != 2 || ran[1] != 2 {
		t.Fatalf("executed events %v, want [1 2]", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want the interrupted event still queued", s.Pending())
	}
}

func TestInterruptCustomError(t *testing.T) {
	sentinel := errors.New("stop it")
	s := New()
	s.At(1, func() { s.Interrupt(sentinel) })
	if err := s.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the custom error", err)
	}
	// The stop reason is consumed: a further Run drains normally.
	s.At(2, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("second Run: %v", err)
	}
}

func TestResetClearsInterrupt(t *testing.T) {
	s := New()
	s.At(1, func() { s.Interrupt(nil) })
	s.Interrupt(nil) // armed before Run even starts
	s.Reset()
	done := false
	s.At(1, func() { done = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if !done {
		t.Fatal("event after Reset did not run")
	}
}
