package dag_test

import (
	"fmt"

	"reassign/internal/dag"
)

// Example builds the paper's running structure — activations with
// data dependencies — and queries its shape.
func Example() {
	w := dag.New("etl")
	w.MustAdd("extract", "extract", 10)
	w.MustAdd("transformA", "transform", 30)
	w.MustAdd("transformB", "transform", 20)
	w.MustAdd("load", "load", 5)
	w.MustDep("extract", "transformA")
	w.MustDep("extract", "transformB")
	w.MustDep("transformA", "load")
	w.MustDep("transformB", "load")

	order, _ := w.TopoOrder()
	fmt.Println("first:", order[0].ID, "last:", order[len(order)-1].ID)
	_, cp, _ := w.CriticalPath()
	fmt.Printf("critical path: %.0fs of %.0fs total\n", cp, w.TotalRuntime())
	width, _ := w.Width()
	fmt.Println("width:", width)
	// Output:
	// first: extract last: load
	// critical path: 45s of 65s total
	// width: 2
}

// ExampleWorkflow_InferDataDeps derives edges from produced/consumed
// files, the paper's dep(ac_i, ac_j) definition.
func ExampleWorkflow_InferDataDeps() {
	w := dag.New("data")
	a := w.MustAdd("a", "produce", 1)
	b := w.MustAdd("b", "consume", 1)
	a.Outputs = []dag.File{{Name: "chunk.dat", Size: 1024}}
	b.Inputs = a.Outputs

	added := w.InferDataDeps()
	fmt.Println("edges added:", added)
	fmt.Println("a before b:", w.HasDep("a", "b"))
	// Output:
	// edges added: 1
	// a before b: true
}

// ExampleMerge schedules two workflows as one ensemble.
func ExampleMerge() {
	first := dag.New("wfA")
	first.MustAdd("t", "x", 1)
	second := dag.New("wfB")
	second.MustAdd("t", "x", 2)

	ens, _ := dag.Merge("batch", first, second)
	fmt.Println("activations:", ens.Len())
	fmt.Println("namespaced:", ens.Get("wfA#0/t") != nil && ens.Get("wfB#1/t") != nil)
	// Output:
	// activations: 2
	// namespaced: true
}
