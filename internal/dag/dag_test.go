package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the classic 4-node diamond: a -> {b, c} -> d.
func diamond(t testing.TB) *Workflow {
	w := New("diamond")
	w.MustAdd("a", "load", 1)
	w.MustAdd("b", "left", 2)
	w.MustAdd("c", "right", 3)
	w.MustAdd("d", "join", 4)
	w.MustDep("a", "b")
	w.MustDep("a", "c")
	w.MustDep("b", "d")
	w.MustDep("c", "d")
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAddAndGet(t *testing.T) {
	w := New("w")
	a, err := w.Add("t1", "proc", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Index != 0 || a.Activity != "proc" || a.Runtime != 5 {
		t.Fatalf("unexpected activation %+v", a)
	}
	if w.Get("t1") != a {
		t.Fatal("Get did not return the added activation")
	}
	if w.Get("missing") != nil {
		t.Fatal("Get returned non-nil for missing ID")
	}
	if w.ByIndex(0) != a {
		t.Fatal("ByIndex(0) mismatch")
	}
}

func TestAddErrors(t *testing.T) {
	w := New("w")
	if _, err := w.Add("", "x", 1); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := w.Add("a", "x", -1); err == nil {
		t.Fatal("negative runtime accepted")
	}
	w.MustAdd("a", "x", 1)
	if _, err := w.Add("a", "x", 1); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestAddDepErrors(t *testing.T) {
	w := New("w")
	w.MustAdd("a", "x", 1)
	if err := w.AddDep("a", "missing"); err == nil {
		t.Fatal("unknown child accepted")
	}
	if err := w.AddDep("missing", "a"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := w.AddDep("a", "a"); err == nil {
		t.Fatal("self-dependency accepted")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	w := New("w")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	w.MustDep("a", "b")
	w.MustDep("a", "b")
	if got := w.Edges(); got != 1 {
		t.Fatalf("Edges() = %d, want 1", got)
	}
	if len(w.Get("b").Parents()) != 1 {
		t.Fatalf("b has %d parents, want 1", len(w.Get("b").Parents()))
	}
}

func TestRootsAndLeaves(t *testing.T) {
	w := diamond(t)
	roots, leaves := w.Roots(), w.Leaves()
	if len(roots) != 1 || roots[0].ID != "a" {
		t.Fatalf("Roots() = %v", roots)
	}
	if len(leaves) != 1 || leaves[0].ID != "d" {
		t.Fatalf("Leaves() = %v", leaves)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	w := diamond(t)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, a := range order {
		pos[a.ID] = i
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %v violated in order %v", e, order)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	w := New("cyclic")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	w.MustAdd("c", "x", 1)
	w.MustDep("a", "b")
	w.MustDep("b", "c")
	w.MustDep("c", "a")
	if _, err := w.TopoOrder(); err == nil {
		t.Fatal("cycle not detected by TopoOrder")
	}
	if err := w.Validate(); err == nil {
		t.Fatal("cycle not detected by Validate")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty workflow validated")
	}
}

func TestLevels(t *testing.T) {
	w := diamond(t)
	lv, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(lv) != 3 {
		t.Fatalf("levels = %d, want 3", len(lv))
	}
	if len(lv[0]) != 1 || lv[0][0].ID != "a" {
		t.Fatalf("level 0 = %v", lv[0])
	}
	if len(lv[1]) != 2 {
		t.Fatalf("level 1 = %v", lv[1])
	}
	if len(lv[2]) != 1 || lv[2][0].ID != "d" {
		t.Fatalf("level 2 = %v", lv[2])
	}
	d, _ := w.Depth()
	if d != 3 {
		t.Fatalf("Depth() = %d, want 3", d)
	}
	width, _ := w.Width()
	if width != 2 {
		t.Fatalf("Width() = %d, want 2", width)
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond(t)
	path, length, err := w.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// a(1) -> c(3) -> d(4) = 8 beats a -> b(2) -> d = 7.
	if length != 8 {
		t.Fatalf("critical path length = %v, want 8", length)
	}
	want := []string{"a", "c", "d"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i, id := range want {
		if path[i].ID != id {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestBottomLevel(t *testing.T) {
	w := diamond(t)
	bl, err := w.BottomLevel()
	if err != nil {
		t.Fatal(err)
	}
	// d: 4; b: 2+4=6; c: 3+4=7; a: 1+7=8.
	wantByID := map[string]float64{"a": 8, "b": 6, "c": 7, "d": 4}
	for id, want := range wantByID {
		if got := bl[w.Get(id).Index]; got != want {
			t.Fatalf("bottom level of %s = %v, want %v", id, got, want)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	w := diamond(t)
	anc, err := w.Ancestors("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Fatalf("ancestors of d = %v, want 3", anc)
	}
	desc, err := w.Descendants("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 {
		t.Fatalf("descendants of a = %v, want 3", desc)
	}
	if _, err := w.Ancestors("missing"); err == nil {
		t.Fatal("Ancestors of missing ID succeeded")
	}
	if _, err := w.Descendants("missing"); err == nil {
		t.Fatal("Descendants of missing ID succeeded")
	}
}

func TestInferDataDeps(t *testing.T) {
	w := New("data")
	a := w.MustAdd("a", "produce", 1)
	b := w.MustAdd("b", "consume", 1)
	c := w.MustAdd("c", "independent", 1)
	a.Outputs = []File{{Name: "f1.dat", Size: 100}}
	b.Inputs = []File{{Name: "f1.dat", Size: 100}, {Name: "external.dat", Size: 5}}
	c.Inputs = []File{{Name: "other.dat", Size: 1}}
	added := w.InferDataDeps()
	if added != 1 {
		t.Fatalf("InferDataDeps added %d edges, want 1", added)
	}
	if !w.HasDep("a", "b") {
		t.Fatal("missing inferred edge a->b")
	}
	if w.HasDep("a", "c") || w.HasDep("b", "c") {
		t.Fatal("spurious edge to c")
	}
	// Idempotent.
	if again := w.InferDataDeps(); again != 0 {
		t.Fatalf("second InferDataDeps added %d edges, want 0", again)
	}
}

func TestTransitiveReduction(t *testing.T) {
	w := New("tr")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	w.MustAdd("c", "x", 1)
	w.MustDep("a", "b")
	w.MustDep("b", "c")
	w.MustDep("a", "c") // redundant
	removed, err := w.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d edges, want 1", removed)
	}
	if w.HasDep("a", "c") {
		t.Fatal("redundant edge a->c survived")
	}
	if !w.HasDep("a", "b") || !w.HasDep("b", "c") {
		t.Fatal("reduction removed a necessary edge")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	w := diamond(t)
	w.Get("a").Outputs = []File{{Name: "out.fits", Size: 42}}
	c := w.Clone()
	if c.Len() != w.Len() || c.Edges() != w.Edges() {
		t.Fatalf("clone shape mismatch: %d/%d vs %d/%d", c.Len(), c.Edges(), w.Len(), w.Edges())
	}
	// Mutating the clone must not affect the original.
	c.MustAdd("extra", "x", 1)
	c.MustDep("d", "extra")
	if w.Len() != 4 || w.HasDep("d", "extra") {
		t.Fatal("clone shares state with original")
	}
	if len(c.Get("a").Outputs) != 1 || c.Get("a").Outputs[0].Name != "out.fits" {
		t.Fatal("clone lost file metadata")
	}
	c.Get("a").Outputs[0].Size = 7
	if w.Get("a").Outputs[0].Size != 42 {
		t.Fatal("clone shares file slice with original")
	}
}

func TestFileByteTotals(t *testing.T) {
	a := &Activation{
		Inputs:  []File{{Size: 10}, {Size: 20}},
		Outputs: []File{{Size: 5}},
	}
	if a.InputBytes() != 30 {
		t.Fatalf("InputBytes = %d", a.InputBytes())
	}
	if a.OutputBytes() != 5 {
		t.Fatalf("OutputBytes = %d", a.OutputBytes())
	}
}

func TestActivityNamesAndCounts(t *testing.T) {
	w := New("w")
	w.MustAdd("1", "b", 1)
	w.MustAdd("2", "a", 1)
	w.MustAdd("3", "b", 1)
	names := w.ActivityNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ActivityNames = %v", names)
	}
	counts := w.CountByActivity()
	if counts["a"] != 1 || counts["b"] != 2 {
		t.Fatalf("CountByActivity = %v", counts)
	}
}

func TestTotalRuntime(t *testing.T) {
	w := diamond(t)
	if got := w.TotalRuntime(); got != 10 {
		t.Fatalf("TotalRuntime = %v, want 10", got)
	}
}

// randomDAG builds a random layered DAG: edges only go from lower to
// higher indices, guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int, p float64) *Workflow {
	w := New("random")
	for i := 0; i < n; i++ {
		w.MustAdd(fmt.Sprintf("t%d", i), "x", rng.Float64()*10+0.1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				w.MustDep(fmt.Sprintf("t%d", i), fmt.Sprintf("t%d", j))
			}
		}
	}
	return w
}

// Property: topological order contains every node exactly once and
// respects every edge.
func TestPropertyTopoOrderValid(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%30 + 1
		p := float64(rawP%100) / 150.0
		w := randomDAG(rng, n, p)
		order, err := w.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := make(map[*Activation]int, n)
		for i, a := range order {
			if _, dup := pos[a]; dup {
				return false
			}
			pos[a] = i
		}
		for _, a := range w.Activations() {
			for _, c := range a.Children() {
				if pos[a] >= pos[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path length is at least the longest single
// runtime and at most the total runtime, and the returned path's
// runtimes sum to the returned length.
func TestPropertyCriticalPathBounds(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%25 + 1
		w := randomDAG(rng, n, 0.2)
		path, length, err := w.CriticalPath()
		if err != nil {
			return false
		}
		var sum, maxRt float64
		for _, a := range w.Activations() {
			if a.Runtime > maxRt {
				maxRt = a.Runtime
			}
		}
		for _, a := range path {
			sum += a.Runtime
		}
		if length < maxRt-1e-9 || length > w.TotalRuntime()+1e-9 {
			return false
		}
		return sum > length-1e-9 && sum < length+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive reduction preserves reachability.
func TestPropertyTransitiveReductionPreservesReachability(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%15 + 2
		w := randomDAG(rng, n, 0.3)
		// Record reachability before.
		before := make(map[string]map[string]bool)
		for _, a := range w.Activations() {
			d, err := w.Descendants(a.ID)
			if err != nil {
				return false
			}
			set := make(map[string]bool)
			for id := range d {
				set[id] = true
			}
			before[a.ID] = set
		}
		if _, err := w.TransitiveReduction(); err != nil {
			return false
		}
		for _, a := range w.Activations() {
			d, err := w.Descendants(a.ID)
			if err != nil {
				return false
			}
			if len(d) != len(before[a.ID]) {
				return false
			}
			for id := range d {
				if !before[a.ID][id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is structurally identical.
func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN)%20 + 1
		w := randomDAG(rng, n, 0.25)
		c := w.Clone()
		if c.Len() != w.Len() || c.Edges() != w.Edges() {
			return false
		}
		for _, a := range w.Activations() {
			ca := c.Get(a.ID)
			if ca == nil || ca.Runtime != a.Runtime || ca.Activity != a.Activity {
				return false
			}
			for _, ch := range a.Children() {
				if !c.HasDep(a.ID, ch.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := randomDAG(rng, 200, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	w := randomDAG(rng, 200, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMerge(t *testing.T) {
	a := diamond(t)
	b := New("other")
	b.MustAdd("x", "solo", 5)

	m, err := Merge("ensemble", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d, want 5", m.Len())
	}
	if m.Edges() != a.Edges() {
		t.Fatalf("Edges = %d, want %d", m.Edges(), a.Edges())
	}
	// IDs namespaced; originals untouched.
	if m.Get("diamond#0/a") == nil || m.Get("other#1/x") == nil {
		t.Fatalf("namespaced IDs missing")
	}
	if a.Get("a") == nil || a.Len() != 4 {
		t.Fatal("merge mutated input")
	}
	// Cross-workflow independence: the two components are disconnected.
	desc, err := m.Descendants("diamond#0/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, crossed := desc["other#1/x"]; crossed {
		t.Fatal("merge connected unrelated workflows")
	}
}

func TestMergeSameWorkflowTwice(t *testing.T) {
	w := diamond(t)
	w.Get("a").Outputs = []File{{Name: "shared.dat", Size: 1}}
	m, err := Merge("double", w, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
	// File names are namespaced per instance, so data-dependency
	// inference cannot cross instances.
	if added := m.InferDataDeps(); added != 0 {
		t.Fatalf("InferDataDeps crossed ensemble members: %d edges", added)
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge("none"); err == nil {
		t.Fatal("empty merge accepted")
	}
}
