package dag

import (
	"fmt"
	"sort"
)

// Levels partitions the activations by their depth: level 0 holds the
// roots; each activation sits one level below its deepest parent.
// The workflow must be acyclic.
func (w *Workflow) Levels() ([][]*Activation, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(w.acts))
	max := 0
	for _, a := range order {
		d := 0
		for _, p := range a.parents {
			if depth[p.Index]+1 > d {
				d = depth[p.Index] + 1
			}
		}
		depth[a.Index] = d
		if d > max {
			max = d
		}
	}
	levels := make([][]*Activation, max+1)
	for _, a := range w.acts {
		levels[depth[a.Index]] = append(levels[depth[a.Index]], a)
	}
	return levels, nil
}

// Depth returns the number of levels (height of the DAG).
func (w *Workflow) Depth() (int, error) {
	lv, err := w.Levels()
	if err != nil {
		return 0, err
	}
	return len(lv), nil
}

// CriticalPath returns the chain of activations with the largest total
// reference runtime, and that total. Communication costs are ignored
// (the pure computation critical path, a lower bound on makespan with
// unit-speed VMs).
func (w *Workflow) CriticalPath() ([]*Activation, float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	finish := make([]float64, len(w.acts)) // longest path ending at node, inclusive
	pred := make([]*Activation, len(w.acts))
	for _, a := range order {
		best := 0.0
		var bp *Activation
		for _, p := range a.parents {
			if finish[p.Index] > best {
				best = finish[p.Index]
				bp = p
			}
		}
		finish[a.Index] = best + a.Runtime
		pred[a.Index] = bp
	}
	var end *Activation
	bestLen := -1.0
	for _, a := range w.acts {
		if finish[a.Index] > bestLen {
			bestLen = finish[a.Index]
			end = a
		}
	}
	var path []*Activation
	for a := end; a != nil; a = pred[a.Index] {
		path = append(path, a)
	}
	// Reverse into root-to-leaf order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestLen, nil
}

// BottomLevel returns, per activation index, the length of the longest
// runtime-weighted path from that activation to any leaf (inclusive of
// the activation's own runtime). This is the "upward rank" with zero
// communication cost used by list schedulers such as HEFT.
func (w *Workflow) BottomLevel() ([]float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(w.acts))
	for i := len(order) - 1; i >= 0; i-- {
		a := order[i]
		best := 0.0
		for _, c := range a.children {
			if bl[c.Index] > best {
				best = bl[c.Index]
			}
		}
		bl[a.Index] = a.Runtime + best
	}
	return bl, nil
}

// Ancestors returns the set of all (transitive) ancestors of the
// activation with the given ID, as a map keyed by activation ID.
func (w *Workflow) Ancestors(id string) (map[string]*Activation, error) {
	a := w.Get(id)
	if a == nil {
		return nil, fmt.Errorf("dag: unknown activation %q", id)
	}
	out := make(map[string]*Activation)
	var visit func(x *Activation)
	visit = func(x *Activation) {
		for _, p := range x.parents {
			if _, seen := out[p.ID]; !seen {
				out[p.ID] = p
				visit(p)
			}
		}
	}
	visit(a)
	return out, nil
}

// Descendants returns the set of all (transitive) descendants of the
// activation with the given ID.
func (w *Workflow) Descendants(id string) (map[string]*Activation, error) {
	a := w.Get(id)
	if a == nil {
		return nil, fmt.Errorf("dag: unknown activation %q", id)
	}
	out := make(map[string]*Activation)
	var visit func(x *Activation)
	visit = func(x *Activation) {
		for _, c := range x.children {
			if _, seen := out[c.ID]; !seen {
				out[c.ID] = c
				visit(c)
			}
		}
	}
	visit(a)
	return out, nil
}

// TransitiveReduction removes every edge a->c for which another path
// a->...->c exists. It returns the number of edges removed. The
// workflow must be acyclic.
func (w *Workflow) TransitiveReduction() (int, error) {
	if _, err := w.TopoOrder(); err != nil {
		return 0, err
	}
	removed := 0
	for _, a := range w.acts {
		// For each direct child c, check reachability from a without
		// using the edge a->c.
		keep := a.children[:0:0]
		for _, c := range a.children {
			if w.reachableWithout(a, c) {
				removed++
				// drop back-pointer
				np := c.parents[:0:0]
				for _, p := range c.parents {
					if p != a {
						np = append(np, p)
					}
				}
				c.parents = np
			} else {
				keep = append(keep, c)
			}
		}
		a.children = keep
	}
	return removed, nil
}

// reachableWithout reports whether target is reachable from src via a
// path of length >= 2 (i.e. not using the direct edge src->target).
func (w *Workflow) reachableWithout(src, target *Activation) bool {
	seen := make(map[*Activation]bool)
	var stack []*Activation
	for _, c := range src.children {
		if c != target {
			stack = append(stack, c)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == target {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, x.children...)
	}
	return false
}

// ActivityNames returns the distinct activity names, sorted.
func (w *Workflow) ActivityNames() []string {
	set := make(map[string]bool)
	for _, a := range w.acts {
		set[a.Activity] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CountByActivity returns the number of activations per activity name.
func (w *Workflow) CountByActivity() map[string]int {
	out := make(map[string]int)
	for _, a := range w.acts {
		out[a.Activity]++
	}
	return out
}

// Width returns the size of the largest level (maximum theoretical
// parallelism).
func (w *Workflow) Width() (int, error) {
	lv, err := w.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range lv {
		if len(l) > max {
			max = len(l)
		}
	}
	return max, nil
}
