// Package dag models scientific workflows as directed acyclic graphs
// of activations, following the formalism of the paper: a workflow
// W(A, Dep) whose nodes are activities, instantiated into activations
// (the smallest units of work schedulable in parallel), with data
// dependencies derived from produced/consumed files.
package dag

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// File is a data artifact consumed or produced by an activation.
type File struct {
	Name string
	Size int64 // bytes
}

// Activation is one schedulable unit of work (a task). Each
// activation belongs to an activity (its transformation / program
// name, e.g. "mProjectPP" in Montage).
type Activation struct {
	ID       string  // unique within the workflow (DAX style, e.g. "ID00007")
	Index    int     // dense index assigned by the workflow, 0..N-1
	Activity string  // activity / transformation name
	Runtime  float64 // reference execution time in seconds on a 1.0-speed VM
	// Args is the job's command line (DAX <argument> flattened to
	// argv), consumed by execution-stage command runners; empty for
	// synthetic and simulation-only workflows.
	Args    []string
	Inputs  []File
	Outputs []File

	parents  []*Activation
	children []*Activation
}

// Parents returns the activations this one depends on. The returned
// slice is shared; callers must not mutate it.
func (a *Activation) Parents() []*Activation { return a.parents }

// Children returns the activations depending on this one. The
// returned slice is shared; callers must not mutate it.
func (a *Activation) Children() []*Activation { return a.children }

// InputBytes returns the total size of the activation's input files.
func (a *Activation) InputBytes() int64 {
	var n int64
	for _, f := range a.Inputs {
		n += f.Size
	}
	return n
}

// OutputBytes returns the total size of the activation's output files.
func (a *Activation) OutputBytes() int64 {
	var n int64
	for _, f := range a.Outputs {
		n += f.Size
	}
	return n
}

func (a *Activation) String() string {
	return fmt.Sprintf("%s(%s)", a.ID, a.Activity)
}

// Workflow is a DAG of activations.
type Workflow struct {
	Name string

	acts []*Activation
	byID map[string]*Activation

	// validated caches a successful Validate; any structural mutation
	// (Add, AddDep) clears it, so repeated runs over an unchanged
	// workflow skip the O(V+E) re-check. It is atomic because replica
	// learners validate a shared workflow concurrently (the check
	// itself is read-only and idempotent, so two racing validations
	// are harmless).
	validated atomic.Bool
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{Name: name, byID: make(map[string]*Activation)}
}

// Len returns the number of activations.
func (w *Workflow) Len() int { return len(w.acts) }

// Activations returns all activations in insertion (index) order.
// The returned slice is shared; callers must not mutate it.
func (w *Workflow) Activations() []*Activation { return w.acts }

// Get returns the activation with the given ID, or nil.
func (w *Workflow) Get(id string) *Activation { return w.byID[id] }

// ByIndex returns the activation with the given dense index.
func (w *Workflow) ByIndex(i int) *Activation { return w.acts[i] }

// Add creates and inserts a new activation. It returns an error if
// the ID is already taken or the runtime is negative.
func (w *Workflow) Add(id, activity string, runtime float64) (*Activation, error) {
	if id == "" {
		return nil, fmt.Errorf("dag: empty activation ID")
	}
	if _, dup := w.byID[id]; dup {
		return nil, fmt.Errorf("dag: duplicate activation ID %q", id)
	}
	if runtime < 0 {
		return nil, fmt.Errorf("dag: activation %q has negative runtime %v", id, runtime)
	}
	a := &Activation{ID: id, Index: len(w.acts), Activity: activity, Runtime: runtime}
	w.acts = append(w.acts, a)
	w.byID[id] = a
	w.validated.Store(false)
	return a, nil
}

// MustAdd is Add that panics on error, for generators and tests.
func (w *Workflow) MustAdd(id, activity string, runtime float64) *Activation {
	a, err := w.Add(id, activity, runtime)
	if err != nil {
		panic(err)
	}
	return a
}

// AddDep records that child depends on parent (parent must finish
// before child may start). Self-dependencies and unknown IDs are
// errors; duplicate edges are ignored.
func (w *Workflow) AddDep(parentID, childID string) error {
	p, ok := w.byID[parentID]
	if !ok {
		return fmt.Errorf("dag: unknown parent %q", parentID)
	}
	c, ok := w.byID[childID]
	if !ok {
		return fmt.Errorf("dag: unknown child %q", childID)
	}
	if p == c {
		return fmt.Errorf("dag: self-dependency on %q", parentID)
	}
	for _, existing := range p.children {
		if existing == c {
			return nil
		}
	}
	p.children = append(p.children, c)
	c.parents = append(c.parents, p)
	w.validated.Store(false)
	return nil
}

// MustDep is AddDep that panics on error.
func (w *Workflow) MustDep(parentID, childID string) {
	if err := w.AddDep(parentID, childID); err != nil {
		panic(err)
	}
}

// HasDep reports whether a direct edge parent->child exists.
func (w *Workflow) HasDep(parentID, childID string) bool {
	p, ok := w.byID[parentID]
	if !ok {
		return false
	}
	for _, c := range p.children {
		if c.ID == childID {
			return true
		}
	}
	return false
}

// Roots returns activations with no parents, in index order.
func (w *Workflow) Roots() []*Activation {
	var out []*Activation
	for _, a := range w.acts {
		if len(a.parents) == 0 {
			out = append(out, a)
		}
	}
	return out
}

// Leaves returns activations with no children, in index order.
func (w *Workflow) Leaves() []*Activation {
	var out []*Activation
	for _, a := range w.acts {
		if len(a.children) == 0 {
			out = append(out, a)
		}
	}
	return out
}

// Edges returns the number of dependency edges.
func (w *Workflow) Edges() int {
	n := 0
	for _, a := range w.acts {
		n += len(a.children)
	}
	return n
}

// TotalRuntime returns the sum of all activation reference runtimes
// (the sequential makespan on a 1.0-speed machine).
func (w *Workflow) TotalRuntime() float64 {
	var s float64
	for _, a := range w.acts {
		s += a.Runtime
	}
	return s
}

// Validate checks structural invariants: at least one activation,
// consistent parent/child symmetry, and acyclicity.
func (w *Workflow) Validate() error {
	if w.validated.Load() {
		return nil
	}
	if len(w.acts) == 0 {
		return fmt.Errorf("dag: workflow %q has no activations", w.Name)
	}
	for _, a := range w.acts {
		for _, c := range a.children {
			if !contains(c.parents, a) {
				return fmt.Errorf("dag: asymmetric edge %s->%s", a.ID, c.ID)
			}
		}
		for _, p := range a.parents {
			if !contains(p.children, a) {
				return fmt.Errorf("dag: asymmetric edge %s->%s", p.ID, a.ID)
			}
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	w.validated.Store(true)
	return nil
}

func contains(list []*Activation, a *Activation) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

// TopoOrder returns the activations in a deterministic topological
// order (Kahn's algorithm, ready set kept sorted by index). It
// returns an error naming a cycle member if the graph is cyclic.
func (w *Workflow) TopoOrder() ([]*Activation, error) {
	indeg := make([]int, len(w.acts))
	for _, a := range w.acts {
		indeg[a.Index] = len(a.parents)
	}
	var ready []*Activation
	for _, a := range w.acts {
		if indeg[a.Index] == 0 {
			ready = append(ready, a)
		}
	}
	var order []*Activation
	for len(ready) > 0 {
		// Pop the lowest-index ready activation for determinism.
		sort.Slice(ready, func(i, j int) bool { return ready[i].Index < ready[j].Index })
		a := ready[0]
		ready = ready[1:]
		order = append(order, a)
		for _, c := range a.children {
			indeg[c.Index]--
			if indeg[c.Index] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(w.acts) {
		for _, a := range w.acts {
			if indeg[a.Index] > 0 {
				return nil, fmt.Errorf("dag: cycle detected involving %s", a.ID)
			}
		}
	}
	return order, nil
}

// InferDataDeps adds a dependency edge a->b wherever an output file of
// a is an input file of b, per the paper's dep(ac_i, ac_j) definition.
// It returns the number of edges added.
func (w *Workflow) InferDataDeps() int {
	producer := make(map[string]*Activation)
	for _, a := range w.acts {
		for _, f := range a.Outputs {
			producer[f.Name] = a
		}
	}
	added := 0
	for _, b := range w.acts {
		for _, f := range b.Inputs {
			a, ok := producer[f.Name]
			if !ok || a == b {
				continue
			}
			if !w.HasDep(a.ID, b.ID) {
				if err := w.AddDep(a.ID, b.ID); err == nil {
					added++
				}
			}
		}
	}
	return added
}

// Clone returns a deep copy of the workflow (files are copied by
// value; the graphs are independent).
func (w *Workflow) Clone() *Workflow {
	out := New(w.Name)
	for _, a := range w.acts {
		na := out.MustAdd(a.ID, a.Activity, a.Runtime)
		na.Args = append([]string(nil), a.Args...)
		na.Inputs = append([]File(nil), a.Inputs...)
		na.Outputs = append([]File(nil), a.Outputs...)
	}
	for _, a := range w.acts {
		for _, c := range a.children {
			out.MustDep(a.ID, c.ID)
		}
	}
	return out
}

// Merge combines several workflows into one ensemble DAG, prefixing
// every activation ID with its workflow's name (and index, to stay
// unique) — the shape used to schedule a batch of workflows onto one
// shared fleet. The inputs are not modified.
func Merge(name string, ws ...*Workflow) (*Workflow, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("dag: merge of zero workflows")
	}
	out := New(name)
	for i, w := range ws {
		prefix := fmt.Sprintf("%s#%d/", w.Name, i)
		for _, a := range w.Activations() {
			na, err := out.Add(prefix+a.ID, a.Activity, a.Runtime)
			if err != nil {
				return nil, err
			}
			na.Inputs = prefixFiles(prefix, a.Inputs)
			na.Outputs = prefixFiles(prefix, a.Outputs)
		}
		for _, a := range w.Activations() {
			for _, c := range a.Children() {
				if err := out.AddDep(prefix+a.ID, prefix+c.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// prefixFiles namespaces file names so identically named files of
// different ensemble members stay distinct.
func prefixFiles(prefix string, fs []File) []File {
	out := make([]File, len(fs))
	for i, f := range fs {
		out[i] = File{Name: prefix + f.Name, Size: f.Size}
	}
	return out
}
