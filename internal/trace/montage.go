package trace

import (
	"fmt"
	"math/rand"

	"reassign/internal/dag"
)

// Montage activity runtime/data profiles. Means follow the spread
// reported in the Pegasus workflow profiling literature (Juve et al.):
// mConcatFit/mBgModel/mAdd dominate; the wide fan-out stages
// (mProjectPP, mDiffFit, mBackground) are short and numerous. The
// absolute scale only matters relative to VM speeds.
var montageProfiles = map[string]activityProfile{
	"mProjectPP": {name: "mProjectPP", meanRt: 13.6, cvRt: 0.25, outBytes: 8_400_000},
	"mDiffFit":   {name: "mDiffFit", meanRt: 10.9, cvRt: 0.25, outBytes: 300_000},
	"mConcatFit": {name: "mConcatFit", meanRt: 143.0, cvRt: 0.10, outBytes: 1_200_000},
	"mBgModel":   {name: "mBgModel", meanRt: 222.0, cvRt: 0.10, outBytes: 110_000},
	"mBackground": {name: "mBackground", meanRt: 11.2, cvRt: 0.25,
		outBytes: 8_400_000},
	"mImgtbl": {name: "mImgtbl", meanRt: 7.0, cvRt: 0.15, outBytes: 400_000},
	"mAdd":    {name: "mAdd", meanRt: 61.0, cvRt: 0.15, outBytes: 25_000_000},
	"mShrink": {name: "mShrink", meanRt: 5.3, cvRt: 0.20, outBytes: 4_200_000},
	"mJPEG":   {name: "mJPEG", meanRt: 1.0, cvRt: 0.20, outBytes: 900_000},
}

const fitsInputBytes = 4_200_000 // raw 2MASS FITS tile

// Montage generates a Montage mosaic workflow for nImages input sky
// tiles, with the canonical nine-stage structure:
//
//	mProjectPP (×images) → mDiffFit (×overlaps) → mConcatFit →
//	mBgModel → mBackground (×images) → mImgtbl → mAdd →
//	mShrink (×shrinks) → mJPEG
//
// nShrink controls the number of mShrink activations (the public
// 50-node trace uses 8; larger traces use 1-2 per mosaic tile).
func Montage(rng *rand.Rand, nImages, nShrink int) *dag.Workflow {
	if nImages < 2 {
		nImages = 2
	}
	if nShrink < 1 {
		nShrink = 1
	}
	w := dag.New(fmt.Sprintf("Montage_%d", nImages))
	var g idGen

	newAct := func(activity string) *dag.Activation {
		p := montageProfiles[activity]
		a := w.MustAdd(g.id(), activity, p.sample(rng))
		return a
	}
	outFile := func(a *dag.Activation, tag string) dag.File {
		p := montageProfiles[a.Activity]
		f := dag.File{
			Name: fmt.Sprintf("%s_%s.out", a.ID, tag),
			Size: jitterBytes(rng, p.outBytes),
		}
		a.Outputs = append(a.Outputs, f)
		return f
	}
	consume := func(a *dag.Activation, f dag.File) {
		a.Inputs = append(a.Inputs, f)
	}

	// Stage 1: mProjectPP, one per image, each reading a raw FITS tile.
	projs := make([]*dag.Activation, nImages)
	projOut := make([]dag.File, nImages)
	for i := range projs {
		a := newAct("mProjectPP")
		a.Inputs = append(a.Inputs, dag.File{
			Name: fmt.Sprintf("raw_%d.fits", i),
			Size: jitterBytes(rng, fitsInputBytes),
		})
		projOut[i] = outFile(a, "proj")
		projs[i] = a
	}

	// Stage 2: mDiffFit, one per overlapping pair. Adjacent tiles in a
	// strip overlap with their neighbours; the public traces have
	// roughly 1.7 diffs per image. We pair (i, i+1) and, where
	// available, (i, i+2) until the target count is met.
	nDiff := (nImages*17 + 5) / 10 // ≈1.7 per image, rounded
	type pair struct{ a, b int }
	var pairs []pair
	for i := 0; i+1 < nImages; i++ {
		pairs = append(pairs, pair{i, i + 1})
	}
	for i := 0; i+2 < nImages && len(pairs) < nDiff; i++ {
		pairs = append(pairs, pair{i, i + 2})
	}
	for i := 0; i+3 < nImages && len(pairs) < nDiff; i++ {
		pairs = append(pairs, pair{i, i + 3})
	}
	if len(pairs) > nDiff {
		pairs = pairs[:nDiff]
	}
	diffs := make([]*dag.Activation, 0, len(pairs))
	diffOut := make([]dag.File, 0, len(pairs))
	for _, pr := range pairs {
		a := newAct("mDiffFit")
		consume(a, projOut[pr.a])
		consume(a, projOut[pr.b])
		w.MustDep(projs[pr.a].ID, a.ID)
		w.MustDep(projs[pr.b].ID, a.ID)
		diffOut = append(diffOut, outFile(a, "diff"))
		diffs = append(diffs, a)
	}

	// Stage 3: mConcatFit aggregates every diff.
	concat := newAct("mConcatFit")
	for i, d := range diffs {
		consume(concat, diffOut[i])
		w.MustDep(d.ID, concat.ID)
	}
	concatOut := outFile(concat, "fits")

	// Stage 4: mBgModel.
	bgModel := newAct("mBgModel")
	consume(bgModel, concatOut)
	w.MustDep(concat.ID, bgModel.ID)
	correctionsOut := outFile(bgModel, "corr")

	// Stage 5: mBackground, one per image, needs the matching
	// projection and the global correction table.
	bgs := make([]*dag.Activation, nImages)
	bgOut := make([]dag.File, nImages)
	for i := range bgs {
		a := newAct("mBackground")
		consume(a, projOut[i])
		consume(a, correctionsOut)
		w.MustDep(projs[i].ID, a.ID)
		w.MustDep(bgModel.ID, a.ID)
		bgOut[i] = outFile(a, "bg")
		bgs[i] = a
	}

	// Stage 6: mImgtbl aggregates all corrected images.
	imgtbl := newAct("mImgtbl")
	for i, b := range bgs {
		consume(imgtbl, bgOut[i])
		w.MustDep(b.ID, imgtbl.ID)
	}
	tblOut := outFile(imgtbl, "tbl")

	// Stage 7: mAdd builds the mosaic.
	add := newAct("mAdd")
	consume(add, tblOut)
	w.MustDep(imgtbl.ID, add.ID)
	for i := range bgOut {
		consume(add, bgOut[i])
		w.MustDep(bgs[i].ID, add.ID)
	}
	mosaicOut := outFile(add, "mosaic")

	// Stage 8: mShrink, nShrink reduced-resolution tiles of the mosaic.
	shrinks := make([]*dag.Activation, nShrink)
	shrinkOut := make([]dag.File, nShrink)
	for i := range shrinks {
		a := newAct("mShrink")
		consume(a, mosaicOut)
		w.MustDep(add.ID, a.ID)
		shrinkOut[i] = outFile(a, "shrunk")
		shrinks[i] = a
	}

	// Stage 9: mJPEG renders the final image from every shrink.
	jpeg := newAct("mJPEG")
	for i, s := range shrinks {
		consume(jpeg, shrinkOut[i])
		w.MustDep(s.ID, jpeg.ID)
	}
	outFile(jpeg, "jpg")

	return w
}

// Montage50 generates the 50-activation instance matching the
// composition of the public Montage_50 DAX used in the paper's
// evaluation: 10 mProjectPP, 17 mDiffFit, 1 mConcatFit, 1 mBgModel,
// 10 mBackground, 1 mImgtbl, 1 mAdd, 8 mShrink, 1 mJPEG.
func Montage50(rng *rand.Rand) *dag.Workflow {
	w := Montage(rng, 10, 8)
	w.Name = "Montage_50"
	return w
}

// MontageN generates a Montage instance with approximately the given
// total number of activations (images and shrinks are derived from
// the 50-node ratios).
func MontageN(rng *rand.Rand, nodes int) *dag.Workflow {
	if nodes < 10 {
		nodes = 10
	}
	// Per the 50-node composition, fixed stages take 4 activations and
	// each image contributes ≈ 1 (proj) + 1.7 (diff) + 1 (bg) = 3.7;
	// shrinks are ≈0.8 per image.
	images := int(float64(nodes-4) / 4.5)
	if images < 2 {
		images = 2
	}
	shrinks := images * 8 / 10
	if shrinks < 1 {
		shrinks = 1
	}
	return Montage(rng, images, shrinks)
}
