package trace

import (
	"fmt"
	"math/rand"

	"reassign/internal/dag"
)

var cyberShakeProfiles = map[string]activityProfile{
	"ExtractSGT":          {meanRt: 112.0, cvRt: 0.30, outBytes: 150_000_000},
	"SeismogramSynthesis": {meanRt: 48.0, cvRt: 0.40, outBytes: 900_000},
	"ZipSeis":             {meanRt: 35.0, cvRt: 0.15, outBytes: 12_000_000},
	"PeakValCalcOkaya":    {meanRt: 1.2, cvRt: 0.30, outBytes: 600},
	"ZipPSA":              {meanRt: 32.0, cvRt: 0.15, outBytes: 1_500_000},
}

// CyberShake generates a CyberShake seismic-hazard workflow with
// approximately `nodes` activations: a handful of ExtractSGT roots,
// many SeismogramSynthesis fan-outs each followed by a
// PeakValCalcOkaya, and two zip aggregators.
func CyberShake(rng *rand.Rand, nodes int) *dag.Workflow {
	if nodes < 8 {
		nodes = 8
	}
	w := dag.New(fmt.Sprintf("CyberShake_%d", nodes))
	var g idGen
	add := func(activity string) *dag.Activation {
		p := cyberShakeProfiles[activity]
		p.name = activity
		a := w.MustAdd(g.id(), activity, p.sample(rng))
		a.Outputs = []dag.File{{
			Name: a.ID + ".out",
			Size: jitterBytes(rng, p.outBytes),
		}}
		return a
	}
	link := func(p, c *dag.Activation) {
		c.Inputs = append(c.Inputs, p.Outputs[0])
		w.MustDep(p.ID, c.ID)
	}

	// nodes ≈ nSGT + 2*nSynth + 2 (the zips): each synthesis brings a
	// peak-value job.
	nSGT := nodes / 20
	if nSGT < 2 {
		nSGT = 2
	}
	nSynth := (nodes - nSGT - 2) / 2
	if nSynth < 2 {
		nSynth = 2
	}
	sgts := make([]*dag.Activation, nSGT)
	for i := range sgts {
		sgts[i] = add("ExtractSGT")
	}
	zipSeis := add("ZipSeis")
	zipPSA := add("ZipPSA")
	for i := 0; i < nSynth; i++ {
		syn := add("SeismogramSynthesis")
		link(sgts[i%nSGT], syn)
		peak := add("PeakValCalcOkaya")
		link(syn, peak)
		link(syn, zipSeis)
		link(peak, zipPSA)
	}
	return w
}

var epigenomicsProfiles = map[string]activityProfile{
	"fastqSplit":    {meanRt: 35.0, cvRt: 0.20, outBytes: 20_000_000},
	"filterContams": {meanRt: 2.5, cvRt: 0.30, outBytes: 18_000_000},
	"sol2sanger":    {meanRt: 0.5, cvRt: 0.30, outBytes: 18_000_000},
	"fastq2bfq":     {meanRt: 1.4, cvRt: 0.30, outBytes: 6_000_000},
	"map":           {meanRt: 201.0, cvRt: 0.35, outBytes: 9_000_000},
	"mapMerge":      {meanRt: 11.0, cvRt: 0.20, outBytes: 30_000_000},
	"maqIndex":      {meanRt: 44.0, cvRt: 0.20, outBytes: 30_000_000},
	"pileup":        {meanRt: 56.0, cvRt: 0.20, outBytes: 80_000_000},
}

// Epigenomics generates the DNA-methylation pipeline: per lane a
// fastqSplit fans out into k four-stage chains
// (filterContams→sol2sanger→fastq2bfq→map) that merge into a
// per-lane mapMerge, followed by a global mapMerge, maqIndex and
// pileup.
func Epigenomics(rng *rand.Rand, nodes int) *dag.Workflow {
	if nodes < 12 {
		nodes = 12
	}
	w := dag.New(fmt.Sprintf("Epigenomics_%d", nodes))
	var g idGen
	add := func(activity string) *dag.Activation {
		p := epigenomicsProfiles[activity]
		p.name = activity
		a := w.MustAdd(g.id(), activity, p.sample(rng))
		a.Outputs = []dag.File{{Name: a.ID + ".out", Size: jitterBytes(rng, p.outBytes)}}
		return a
	}
	link := func(p, c *dag.Activation) {
		c.Inputs = append(c.Inputs, p.Outputs[0])
		w.MustDep(p.ID, c.ID)
	}

	lanes := nodes / 24
	if lanes < 1 {
		lanes = 1
	}
	// nodes ≈ lanes*(1 split + 4k chain stages + 1 merge) + 3 tail.
	k := (nodes - 3 - lanes*2) / (lanes * 4)
	if k < 1 {
		k = 1
	}
	globalMerge := add("mapMerge")
	for l := 0; l < lanes; l++ {
		split := add("fastqSplit")
		laneMerge := add("mapMerge")
		for i := 0; i < k; i++ {
			fc := add("filterContams")
			link(split, fc)
			ss := add("sol2sanger")
			link(fc, ss)
			fb := add("fastq2bfq")
			link(ss, fb)
			mp := add("map")
			link(fb, mp)
			link(mp, laneMerge)
		}
		link(laneMerge, globalMerge)
	}
	idx := add("maqIndex")
	link(globalMerge, idx)
	pl := add("pileup")
	link(idx, pl)
	return w
}

var inspiralProfiles = map[string]activityProfile{
	"TmpltBank": {meanRt: 18.1, cvRt: 0.25, outBytes: 1_000_000},
	"Inspiral":  {meanRt: 460.0, cvRt: 0.35, outBytes: 1_200_000},
	"Thinca":    {meanRt: 5.4, cvRt: 0.25, outBytes: 700_000},
	"TrigBank":  {meanRt: 5.1, cvRt: 0.25, outBytes: 800_000},
}

// Inspiral generates the LIGO Inspiral gravitational-wave workflow:
// groups of TmpltBank→Inspiral chains aggregated by a Thinca per
// group, a TrigBank fan-out, a second Inspiral stage and a final
// Thinca.
func Inspiral(rng *rand.Rand, nodes int) *dag.Workflow {
	if nodes < 9 {
		nodes = 9
	}
	w := dag.New(fmt.Sprintf("Inspiral_%d", nodes))
	var g idGen
	add := func(activity string) *dag.Activation {
		p := inspiralProfiles[activity]
		p.name = activity
		a := w.MustAdd(g.id(), activity, p.sample(rng))
		a.Outputs = []dag.File{{Name: a.ID + ".out", Size: jitterBytes(rng, p.outBytes)}}
		return a
	}
	link := func(p, c *dag.Activation) {
		c.Inputs = append(c.Inputs, p.Outputs[0])
		w.MustDep(p.ID, c.ID)
	}

	groups := nodes / 22
	if groups < 1 {
		groups = 1
	}
	// nodes ≈ groups*(4k + 2): k chains of 4 jobs plus 2 thincas.
	k := (nodes - groups*2) / (groups * 4)
	if k < 1 {
		k = 1
	}
	for grp := 0; grp < groups; grp++ {
		thinca1 := add("Thinca")
		thinca2 := add("Thinca")
		for i := 0; i < k; i++ {
			tb := add("TmpltBank")
			in1 := add("Inspiral")
			link(tb, in1)
			link(in1, thinca1)
			trig := add("TrigBank")
			link(thinca1, trig)
			in2 := add("Inspiral")
			link(trig, in2)
			link(in2, thinca2)
		}
	}
	return w
}

var siphtProfiles = map[string]activityProfile{
	"Patser":        {meanRt: 1.0, cvRt: 0.40, outBytes: 5_000},
	"PatserConcate": {meanRt: 0.3, cvRt: 0.20, outBytes: 50_000},
	"TransTerm":     {meanRt: 32.0, cvRt: 0.30, outBytes: 2_000_000},
	"Findterm":      {meanRt: 594.0, cvRt: 0.30, outBytes: 20_000_000},
	"RNAMotif":      {meanRt: 26.0, cvRt: 0.30, outBytes: 800_000},
	"Blast":         {meanRt: 1990.0, cvRt: 0.25, outBytes: 12_000_000},
	"SRNA":          {meanRt: 12.0, cvRt: 0.20, outBytes: 3_000_000},
	"FFN_Parse":     {meanRt: 0.7, cvRt: 0.30, outBytes: 400_000},
	"BlastSynteny":  {meanRt: 3.0, cvRt: 0.30, outBytes: 300_000},
	"SRNAAnnotate":  {meanRt: 0.6, cvRt: 0.30, outBytes: 60_000},
}

// Sipht generates the sRNA-identification workflow: a wide layer of
// Patser jobs concatenated once, a group of independent mid-stage
// analyses (TransTerm, Findterm, RNAMotif, Blast) feeding an SRNA
// aggregator, then annotation fan-out.
func Sipht(rng *rand.Rand, nodes int) *dag.Workflow {
	if nodes < 10 {
		nodes = 10
	}
	w := dag.New(fmt.Sprintf("Sipht_%d", nodes))
	var g idGen
	add := func(activity string) *dag.Activation {
		p := siphtProfiles[activity]
		p.name = activity
		a := w.MustAdd(g.id(), activity, p.sample(rng))
		a.Outputs = []dag.File{{Name: a.ID + ".out", Size: jitterBytes(rng, p.outBytes)}}
		return a
	}
	link := func(p, c *dag.Activation) {
		c.Inputs = append(c.Inputs, p.Outputs[0])
		w.MustDep(p.ID, c.ID)
	}

	nPatser := nodes * 6 / 10
	if nPatser < 2 {
		nPatser = 2
	}
	rem := nodes - nPatser - 7 // concate + 4 analyses + srna + parse
	if rem < 1 {
		rem = 1
	}
	concate := add("PatserConcate")
	for i := 0; i < nPatser; i++ {
		p := add("Patser")
		link(p, concate)
	}
	tt := add("TransTerm")
	ft := add("Findterm")
	rm := add("RNAMotif")
	bl := add("Blast")
	srna := add("SRNA")
	for _, a := range []*dag.Activation{tt, ft, rm, bl} {
		link(a, srna)
	}
	link(concate, srna)
	parse := add("FFN_Parse")
	link(srna, parse)
	for i := 0; i < rem; i++ {
		var a *dag.Activation
		if i%2 == 0 {
			a = add("BlastSynteny")
		} else {
			a = add("SRNAAnnotate")
		}
		link(parse, a)
	}
	return w
}
