// Package trace generates synthetic scientific-workflow instances
// shaped like the published Pegasus Workflow Generator traces
// (Montage, CyberShake, Epigenomics, Inspiral/LIGO, Sipht), plus
// generic random layered DAGs for stress testing.
//
// The paper's evaluation uses the 50-node Montage DAX from the
// Workflow Generator web page. That service is offline for us, so
// these generators reproduce the published DAG structure and the
// per-activity runtime spread; scheduling behaviour depends only on
// those observable properties (see DESIGN.md, substitution table).
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"reassign/internal/dag"
)

// activityProfile describes the runtime and data-size distribution of
// one activity (transformation) type.
type activityProfile struct {
	name     string
	meanRt   float64 // mean reference runtime, seconds
	cvRt     float64 // coefficient of variation of the runtime
	outBytes int64   // typical bytes per output file
}

// sample draws a runtime from a truncated normal distribution: mean
// meanRt, stddev cvRt*meanRt, floored at 5% of the mean so runtimes
// stay strictly positive.
func (p activityProfile) sample(rng *rand.Rand) float64 {
	rt := p.meanRt + rng.NormFloat64()*p.cvRt*p.meanRt
	floor := p.meanRt * 0.05
	if rt < floor {
		rt = floor
	}
	return rt
}

// jitterBytes perturbs a nominal size by ±25% so files are not all
// identical.
func jitterBytes(rng *rand.Rand, nominal int64) int64 {
	if nominal <= 0 {
		return 0
	}
	f := 0.75 + rng.Float64()*0.5
	v := int64(math.Round(float64(nominal) * f))
	if v < 1 {
		v = 1
	}
	return v
}

// idGen produces DAX-style sequential IDs: ID00000, ID00001, ...
type idGen struct{ next int }

func (g *idGen) id() string {
	s := fmt.Sprintf("ID%05d", g.next)
	g.next++
	return s
}

// RandomLayered generates a random DAG with the given number of
// activations spread over `levels` levels; each non-root activation
// gets between 1 and maxFanIn parents from the previous level.
// Runtimes are uniform in [minRt, maxRt). The result is always a
// valid workflow.
func RandomLayered(rng *rand.Rand, nodes, levels, maxFanIn int, minRt, maxRt float64) *dag.Workflow {
	if nodes < 1 {
		nodes = 1
	}
	if levels < 1 {
		levels = 1
	}
	if levels > nodes {
		levels = nodes
	}
	if maxFanIn < 1 {
		maxFanIn = 1
	}
	w := dag.New(fmt.Sprintf("Random_%d", nodes))
	var g idGen
	// Distribute nodes across levels, at least one per level.
	perLevel := make([]int, levels)
	for i := range perLevel {
		perLevel[i] = 1
	}
	for extra := nodes - levels; extra > 0; extra-- {
		perLevel[rng.Intn(levels)]++
	}
	var prev []*dag.Activation
	for l := 0; l < levels; l++ {
		var cur []*dag.Activation
		for i := 0; i < perLevel[l]; i++ {
			rt := minRt + rng.Float64()*(maxRt-minRt)
			a := w.MustAdd(g.id(), fmt.Sprintf("level%d", l), rt)
			if l > 0 {
				fanIn := 1 + rng.Intn(maxFanIn)
				if fanIn > len(prev) {
					fanIn = len(prev)
				}
				for _, pi := range rng.Perm(len(prev))[:fanIn] {
					w.MustDep(prev[pi].ID, a.ID)
				}
			}
			cur = append(cur, a)
		}
		prev = cur
	}
	return w
}

// Named returns the generator for a workflow family by name
// ("montage", "cybershake", "epigenomics", "inspiral", "sipht"),
// each taking an approximate node count. Unknown names return nil.
func Named(family string) func(rng *rand.Rand, nodes int) *dag.Workflow {
	switch family {
	case "montage":
		return MontageN
	case "cybershake":
		return CyberShake
	case "epigenomics":
		return Epigenomics
	case "inspiral":
		return Inspiral
	case "sipht":
		return Sipht
	default:
		return nil
	}
}

// Families lists the supported workflow family names.
func Families() []string {
	return []string{"montage", "cybershake", "epigenomics", "inspiral", "sipht"}
}

// ForkJoin generates repeated fork-join phases: a fork task fans out
// to `width` parallel workers joined by a join task, `phases` times in
// sequence — the classic synthetic shape for scheduler microbenchmarks.
func ForkJoin(rng *rand.Rand, phases, width int, meanRt float64) *dag.Workflow {
	if phases < 1 {
		phases = 1
	}
	if width < 1 {
		width = 1
	}
	if meanRt <= 0 {
		meanRt = 10
	}
	p := activityProfile{meanRt: meanRt, cvRt: 0.2}
	w := dag.New(fmt.Sprintf("ForkJoin_%dx%d", phases, width))
	var g idGen
	prevJoin := ""
	for ph := 0; ph < phases; ph++ {
		fork := w.MustAdd(g.id(), "fork", p.sample(rng)/10)
		if prevJoin != "" {
			w.MustDep(prevJoin, fork.ID)
		}
		join := w.MustAdd(g.id(), "join", p.sample(rng)/10)
		for i := 0; i < width; i++ {
			worker := w.MustAdd(g.id(), "work", p.sample(rng))
			w.MustDep(fork.ID, worker.ID)
			w.MustDep(worker.ID, join.ID)
		}
		prevJoin = join.ID
	}
	return w
}

// Chains generates `count` independent linear pipelines of `length`
// stages each — the zero-parallelism-within, full-parallelism-across
// counterpart to ForkJoin.
func Chains(rng *rand.Rand, count, length int, meanRt float64) *dag.Workflow {
	if count < 1 {
		count = 1
	}
	if length < 1 {
		length = 1
	}
	if meanRt <= 0 {
		meanRt = 10
	}
	p := activityProfile{meanRt: meanRt, cvRt: 0.2}
	w := dag.New(fmt.Sprintf("Chains_%dx%d", count, length))
	var g idGen
	for c := 0; c < count; c++ {
		prev := ""
		for s := 0; s < length; s++ {
			a := w.MustAdd(g.id(), fmt.Sprintf("stage%d", s), p.sample(rng))
			if prev != "" {
				w.MustDep(prev, a.ID)
			}
			prev = a.ID
		}
	}
	return w
}
