package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMontage50Composition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Montage50(rng)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 50 {
		t.Fatalf("Len = %d, want 50", w.Len())
	}
	want := map[string]int{
		"mProjectPP": 10, "mDiffFit": 17, "mConcatFit": 1, "mBgModel": 1,
		"mBackground": 10, "mImgtbl": 1, "mAdd": 1, "mShrink": 8, "mJPEG": 1,
	}
	got := w.CountByActivity()
	for act, n := range want {
		if got[act] != n {
			t.Errorf("%s: %d activations, want %d", act, got[act], n)
		}
	}
	if w.Name != "Montage_50" {
		t.Errorf("name = %q", w.Name)
	}
}

func TestMontageStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Montage(rng, 10, 8)
	// mConcatFit depends on all 17 mDiffFit.
	var concatID string
	for _, a := range w.Activations() {
		if a.Activity == "mConcatFit" {
			concatID = a.ID
			if len(a.Parents()) != 17 {
				t.Fatalf("mConcatFit has %d parents, want 17", len(a.Parents()))
			}
		}
	}
	anc, err := w.Ancestors(concatID)
	if err != nil {
		t.Fatal(err)
	}
	// Its ancestors are all diffs and all projections.
	if len(anc) != 27 {
		t.Fatalf("mConcatFit has %d ancestors, want 27", len(anc))
	}
	// mJPEG is the single leaf.
	leaves := w.Leaves()
	if len(leaves) != 1 || leaves[0].Activity != "mJPEG" {
		t.Fatalf("leaves = %v", leaves)
	}
	// Roots are exactly the projections.
	roots := w.Roots()
	if len(roots) != 10 {
		t.Fatalf("roots = %d, want 10", len(roots))
	}
	for _, r := range roots {
		if r.Activity != "mProjectPP" {
			t.Fatalf("root %v is not mProjectPP", r)
		}
	}
	// Depth: proj, diff, concat, bgmodel, background, imgtbl, add,
	// shrink, jpeg = 9 levels.
	d, err := w.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 9 {
		t.Fatalf("depth = %d, want 9", d)
	}
	// mBackground depends on both its projection and mBgModel.
	for _, a := range w.Activations() {
		if a.Activity == "mBackground" && len(a.Parents()) != 2 {
			t.Fatalf("mBackground %s has %d parents, want 2", a.ID, len(a.Parents()))
		}
	}
}

func TestMontageDataFlowMatchesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := Montage(rng, 6, 3)
	// Every edge should correspond to a produced/consumed file, so
	// re-inferring data deps adds nothing new.
	if added := w.InferDataDeps(); added != 0 {
		t.Fatalf("InferDataDeps added %d edges; data flow inconsistent with structure", added)
	}
}

func TestMontageMinimums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := Montage(rng, 0, 0) // clamped to 2 images, 1 shrink
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := w.CountByActivity()
	if counts["mProjectPP"] != 2 || counts["mShrink"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMontageNApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, target := range []int{10, 50, 100, 300, 1000} {
		w := MontageN(rng, target)
		if err := w.Validate(); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		got := w.Len()
		if got < target/2 || got > target*2 {
			t.Errorf("target %d produced %d activations (outside [%d,%d])", target, got, target/2, target*2)
		}
	}
}

func TestAllFamiliesValidate(t *testing.T) {
	for _, fam := range Families() {
		gen := Named(fam)
		if gen == nil {
			t.Fatalf("Named(%q) = nil", fam)
		}
		for _, size := range []int{5, 30, 120} {
			rng := rand.New(rand.NewSource(9))
			w := gen(rng, size)
			if err := w.Validate(); err != nil {
				t.Errorf("%s size %d: %v", fam, size, err)
			}
			if w.Len() < 3 {
				t.Errorf("%s size %d: only %d activations", fam, size, w.Len())
			}
			// All runtimes strictly positive.
			for _, a := range w.Activations() {
				if a.Runtime <= 0 {
					t.Errorf("%s: activation %s has runtime %v", fam, a.ID, a.Runtime)
				}
			}
		}
	}
}

func TestNamedUnknown(t *testing.T) {
	if Named("nosuch") != nil {
		t.Fatal("Named returned a generator for an unknown family")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a := Named(fam)(rand.New(rand.NewSource(77)), 60)
		b := Named(fam)(rand.New(rand.NewSource(77)), 60)
		if a.Len() != b.Len() || a.Edges() != b.Edges() {
			t.Fatalf("%s: same seed produced different shapes", fam)
		}
		for i, aa := range a.Activations() {
			bb := b.Activations()[i]
			if aa.ID != bb.ID || aa.Runtime != bb.Runtime {
				t.Fatalf("%s: same seed diverged at %d: %v vs %v", fam, i, aa, bb)
			}
		}
	}
}

func TestRandomLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := RandomLayered(rng, 40, 5, 3, 1, 10)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 40 {
		t.Fatalf("Len = %d, want 40", w.Len())
	}
	d, err := w.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
	// Fan-in bound respected.
	for _, a := range w.Activations() {
		if len(a.Parents()) > 3 {
			t.Fatalf("activation %s has fan-in %d > 3", a.ID, len(a.Parents()))
		}
	}
}

func TestRandomLayeredClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := RandomLayered(rng, 0, 0, 0, 1, 2)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
	// levels > nodes clamps to nodes.
	w2 := RandomLayered(rng, 3, 10, 2, 1, 2)
	if err := w2.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := w2.Depth()
	if d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

func TestProfileSampleFloor(t *testing.T) {
	p := activityProfile{meanRt: 10, cvRt: 5} // huge variance
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		if rt := p.sample(rng); rt < 0.5 {
			t.Fatalf("sample %v below 5%% floor", rt)
		}
	}
}

func TestJitterBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 1000; i++ {
		v := jitterBytes(rng, 1000)
		if v < 750 || v > 1250 {
			t.Fatalf("jitterBytes = %d outside ±25%%", v)
		}
	}
	if jitterBytes(rng, 0) != 0 {
		t.Fatal("jitterBytes(0) != 0")
	}
}

// Property: all families produce acyclic workflows whose node count
// tracks the requested size.
func TestPropertyFamiliesWellFormed(t *testing.T) {
	f := func(seed int64, rawSize uint16) bool {
		size := int(rawSize)%400 + 10
		for _, fam := range Families() {
			rng := rand.New(rand.NewSource(seed))
			w := Named(fam)(rng, size)
			if err := w.Validate(); err != nil {
				return false
			}
			if w.Len() < 3 || w.Len() > size*3+20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMontage50(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		w := Montage50(rng)
		if w.Len() != 50 {
			b.Fatal("bad length")
		}
	}
}

func TestForkJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	w := ForkJoin(rng, 3, 5, 10)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 phases × (fork + join + 5 workers) = 21.
	if w.Len() != 21 {
		t.Fatalf("Len = %d, want 21", w.Len())
	}
	d, _ := w.Depth()
	// Each phase adds 3 levels (fork, workers, join).
	if d != 9 {
		t.Fatalf("depth = %d, want 9", d)
	}
	width, _ := w.Width()
	if width != 5 {
		t.Fatalf("width = %d, want 5", width)
	}
	// Clamps.
	w2 := ForkJoin(rng, 0, 0, 0)
	if err := w2.Validate(); err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 3 {
		t.Fatalf("clamped Len = %d, want 3", w2.Len())
	}
}

func TestChains(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := Chains(rng, 4, 6, 10)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 24 {
		t.Fatalf("Len = %d, want 24", w.Len())
	}
	if len(w.Roots()) != 4 || len(w.Leaves()) != 4 {
		t.Fatalf("roots/leaves = %d/%d, want 4/4", len(w.Roots()), len(w.Leaves()))
	}
	d, _ := w.Depth()
	if d != 6 {
		t.Fatalf("depth = %d, want 6", d)
	}
	// Critical path ≈ one chain, total ≈ count × chain.
	_, cp, _ := w.CriticalPath()
	if cp <= 0 || cp >= w.TotalRuntime() {
		t.Fatalf("cp = %v vs total %v", cp, w.TotalRuntime())
	}
}
