package invariant

import (
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// freshVsReset runs cfg twice — once on a fresh engine, once on an
// engine that previously ran a different seed and was Reset — and
// demands bit-identical results. Both runs are audited.
func freshVsReset(t *testing.T, aud *Auditor, w *dag.Workflow, fl *cloud.Fleet, cfg sim.Config) {
	t.Helper()
	cfg.Hook = aud
	fresh, err := sim.Run(w, fl, sched.MCT{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(w, fl, sched.MCT{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the engine with a different seed first, so the reset run
	// has stale state (ready queues, autoscaled VMs, spot corpses) to
	// overwrite — the harder equivalence.
	other := cfg
	other.Seed = cfg.Seed + 1000
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(other); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffResults(fresh, got); len(diffs) > 0 {
		for _, d := range diffs {
			t.Errorf("  %s", d)
		}
		t.Fatalf("fresh and reset runs diverge (%d fields)", len(diffs))
	}
}

// TestFreshVsResetScenarioGrid is the byte-stable-trace contract:
// across seeds and the full scenario grid (fluctuation, data
// transfer, failures, delays, spot on multi-vCPU fleets, autoscaling
// and spot×autoscale), a fresh engine and a reset one must produce
// bit-identical results. Every run is audited too.
func TestFreshVsResetScenarioGrid(t *testing.T) {
	w := montage(t, 3)
	fl16 := fleet16(t)
	// Multi-vCPU spot fleet: revocations kill several concurrent
	// tasks at once, the case that exposed map-ordered aborts.
	multi := cloud.MustFleet("multi", []cloud.VMType{cloud.T2Large, cloud.T22XLarge}, []int{2, 1})
	fluct := cloud.DefaultFluctuation()

	cases := []struct {
		name  string
		fleet *cloud.Fleet
		cfg   sim.Config
	}{
		{"plain", fl16, sim.Config{}},
		{"fluct", fl16, sim.Config{Fluct: &fluct}},
		{"dt", fl16, sim.Config{DataTransfer: true}},
		{"failures", fl16, sim.Config{Fluct: &fluct,
			Failure: cloud.FailureModel{Rate: 0.1}, MaxRetries: 3}},
		{"delays", fl16, sim.Config{Fluct: &fluct,
			EngineDelay: 0.5, QueueDelay: 0.25, PostScriptDelay: 0.1,
			ProvisionDelay: 2, ProvisionJitter: 1}},
		{"spot-multi-vcpu", multi, sim.Config{Fluct: &fluct,
			Spot: &sim.SpotPolicy{MeanLifetime: 300, KeepOne: true}}},
		{"autoscale", fl16, sim.Config{
			Autoscale: &sim.Autoscale{Type: cloud.T2Micro, MaxVMs: 12,
				BootDelay: 5, IdleTimeout: 150, QueuePerFreeSlot: 0.5}}},
		{"spot+autoscale", multi, sim.Config{
			Spot: &sim.SpotPolicy{MeanLifetime: 250, KeepOne: true},
			Autoscale: &sim.Autoscale{Type: cloud.T2Large, MaxVMs: 5,
				BootDelay: 5, IdleTimeout: 150, QueuePerFreeSlot: 0.5}}},
	}

	aud := New()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{3, 17, 99} {
				cfg := tc.cfg
				cfg.Seed = seed
				freshVsReset(t, aud, w, tc.fleet, cfg)
			}
		})
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// TestFreshVsResetClustered runs the same contract on a clustered
// workflow with data transfer.
func TestFreshVsResetClustered(t *testing.T) {
	cw, err := sim.Clustering{Horizontal: true, GroupSize: 3, Vertical: true}.Apply(montage(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	for _, seed := range []int64{3, 17, 99} {
		freshVsReset(t, aud, cw.Workflow, fleet16(t), sim.Config{Seed: seed, DataTransfer: true})
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// TestMapVsDenseReplayDifferential trains one learner on a sparse
// (map) Q table and one on a dense table built from the same init
// seed, then replays both final plans through the simulator: the
// traces must be bit-identical, not just the makespans.
func TestMapVsDenseReplayDifferential(t *testing.T) {
	w := montage(t, 6)
	fl := fleet16(t)
	learn := func(table *rl.Table) *core.Result {
		l := &core.Learner{Workflow: w, Fleet: fl, Params: core.DefaultParams(),
			Episodes: 8, Seed: 17, Table: table}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const initSeed = 23
	a := learn(rl.NewTable(rand.New(rand.NewSource(initSeed)), 1.0))
	b := learn(rl.NewDenseTable(w.Len(), len(fl.VMs), rand.New(rand.NewSource(initSeed)), 1.0))
	if a.PlanMakespan != b.PlanMakespan {
		t.Fatalf("plan makespans diverge: %v (map) vs %v (dense)", a.PlanMakespan, b.PlanMakespan)
	}

	replay := func(p core.Plan) *sim.Result {
		assign := make(map[string]int, p.Len())
		for _, e := range p.Entries() {
			assign[e.Activation] = e.VM
		}
		aud := New()
		res, err := sim.Run(w, fl, &sched.Plan{PlanName: "replay", Assign: assign},
			sim.Config{Seed: 5, Hook: aud})
		if err != nil {
			t.Fatal(err)
		}
		if err := aud.Err(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	if diffs := DiffResults(replay(a.Plan), replay(b.Plan)); len(diffs) > 0 {
		for _, d := range diffs {
			t.Errorf("  %s", d)
		}
		t.Fatal("map-trained and dense-trained plan replays diverge")
	}
}

// TestSoloVsReplicaDifferential checks the replica-splitting
// contract: replica i of a K-replica ensemble is bit-identical to a
// solo learner run with the seed the ensemble assigned to it.
func TestSoloVsReplicaDifferential(t *testing.T) {
	w := montage(t, 1)
	fl := fleet16(t)
	ens, err := core.NewLearner(core.Config{Workflow: w, Fleet: fl, Episodes: 10},
		core.WithSeed(42), core.WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ens.LearnReplicas()
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range rr.Seeds {
		solo, err := core.NewLearner(core.Config{Workflow: w, Fleet: fl, Episodes: 10},
			core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		sres, err := solo.Learn()
		if err != nil {
			t.Fatal(err)
		}
		rres := rr.Results[i]
		if sres.PlanMakespan != rres.PlanMakespan {
			t.Fatalf("replica %d: plan makespan %v, solo %v", i, rres.PlanMakespan, sres.PlanMakespan)
		}
		se, re := sres.Plan.Entries(), rres.Plan.Entries()
		if len(se) != len(re) {
			t.Fatalf("replica %d: plan sizes %d vs %d", i, len(re), len(se))
		}
		for j := range se {
			if se[j] != re[j] {
				t.Fatalf("replica %d: plan entry %d diverges: %+v vs %+v", i, j, re[j], se[j])
			}
		}
	}
}

// TestHEFTPlannedMakespanOracle uses HEFT's static schedule length as
// a lower-bound oracle: under zero delays and zero fluctuation the
// simulated replay of the plan can queue but never beat the plan's
// own estimate, because the simulator charges exactly the execution
// times HEFT planned with.
func TestHEFTPlannedMakespanOracle(t *testing.T) {
	fl := fleet16(t)
	cases := []struct {
		name string
		w    *dag.Workflow
	}{
		{"montage50", montage(t, 3)},
		{"forkjoin", trace.ForkJoin(rand.New(rand.NewSource(4)), 3, 8, 50)},
		{"chains", trace.Chains(rand.New(rand.NewSource(5)), 6, 4, 30)},
	}
	const eps = 1e-9
	aud := New()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &sched.HEFT{}
			res, err := sim.Run(tc.w, fl, h, sim.Config{Hook: aud})
			if err != nil {
				t.Fatal(err)
			}
			if res.State != sim.FinishedOK {
				t.Fatalf("state = %v", res.State)
			}
			if h.PlannedMakespan <= 0 {
				t.Fatalf("PlannedMakespan = %v, want > 0", h.PlannedMakespan)
			}
			if res.Makespan < h.PlannedMakespan-eps {
				t.Fatalf("simulated makespan %v beats the static plan %v: the oracle bound is broken",
					res.Makespan, h.PlannedMakespan)
			}
		})
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// TestDiffResultsAndClone covers the differential helpers themselves:
// a clone diffs clean against its original, stays independent of it,
// and every mutated field is reported.
func TestDiffResultsAndClone(t *testing.T) {
	res, err := sim.Run(montage(t, 3), fleet16(t), sched.MCT{}, sim.Config{Seed: 7,
		Autoscale: &sim.Autoscale{Type: cloud.T2Micro, MaxVMs: 12,
			BootDelay: 5, QueuePerFreeSlot: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	clone := CloneResult(res)
	if diffs := DiffResults(res, clone); len(diffs) != 0 {
		t.Fatalf("clone diffs against original: %v", diffs)
	}

	// Mutating the clone must not touch the original...
	clone.Records[0].Success = !clone.Records[0].Success
	for k := range clone.Plan {
		clone.Plan[k]++
		break
	}
	if diffs := DiffResults(res, CloneResult(res)); len(diffs) != 0 {
		t.Fatalf("original changed under clone mutation: %v", diffs)
	}
	// ...and each mutation must be reported.
	clone.Makespan += 1
	clone.Cost += 0.5
	if clone.Elasticity == nil {
		t.Fatal("autoscaled run has no elasticity report")
	}
	clone.Elasticity.Acquired++
	diffs := DiffResults(res, clone)
	if len(diffs) < 5 {
		t.Fatalf("only %d diffs reported for 5 mutations: %v", len(diffs), diffs)
	}
}
