package invariant

import (
	"math"

	"reassign/internal/sim"
)

// Market-trace invariants. When a run replays a market trace
// (sim.Config.Market), the auditor additionally checks that:
//
//   - a cordoned VM (preemption notice received) never starts new
//     work;
//   - every traced kill was preceded by its notice — revocation of a
//     never-noticed VM, or before the noticed time, is a breach;
//   - the traced bill is non-negative and monotone in virtual time;
//   - at run end, Result.Cost equals the market report's total and
//     the report's counters match the observed events.
//
// runAudit implements sim.MarketRunHook, so the engine delivers
// notice and health transitions directly.

// VMNoticed implements sim.MarketRunHook.
func (r *runAudit) VMNoticed(now float64, v *sim.VMState, killAt float64) {
	r.clock(now)
	r.mNotices++
	if r.cordoned == nil {
		r.cordoned = make(map[*sim.VMState]float64)
	}
	if _, again := r.cordoned[v]; again {
		r.fail(now, "notice-twice", "%v noticed twice", v)
	}
	r.cordoned[v] = now
	if killAt < now {
		r.fail(now, "notice-kill-order", "%v noticed at %v with kill already past at %v", v, now, killAt)
	}
}

// VMHealthChanged implements sim.MarketRunHook.
func (r *runAudit) VMHealthChanged(now float64, v *sim.VMState, factor float64) {
	r.clock(now)
	if factor > 1 {
		r.mDegrades++
	}
	if factor < 1 {
		r.fail(now, "health-factor", "%v moved to health factor %v < 1", v, factor)
	}
}

// marketStart checks a task start against the cordon set: a noticed
// VM must accept no new work.
func (r *runAudit) marketStart(now float64, t *sim.Task, v *sim.VMState) {
	if _, yes := r.cordoned[v]; yes {
		r.fail(now, "cordoned-start", "task %s started on cordoned %v", t.Act.ID, v)
	}
}

// marketRevoke checks notice-then-kill ordering for a traced
// preemption. Market and Spot are mutually exclusive, so with a
// market configured every revocation is a traced kill.
func (r *runAudit) marketRevoke(now float64, v *sim.VMState) {
	if r.env.Market() == nil {
		return
	}
	at, noticed := r.cordoned[v]
	if !noticed {
		r.fail(now, "kill-without-notice", "%v revoked without a preemption notice", v)
		return
	}
	if now < at {
		r.fail(now, "notice-kill-order", "%v killed at %v before its notice at %v", v, now, at)
	}
}

// marketCost checks the traced bill at the current clock: never
// negative, never decreasing.
func (r *runAudit) marketCost(now float64) {
	if r.env.Market() == nil {
		return
	}
	c := r.env.MarketCostAt(now)
	if c < 0 {
		r.fail(now, "market-cost-negative", "traced bill %v < 0", c)
	}
	if c < r.lastMarketCost-1e-9 {
		r.fail(now, "market-cost-monotone", "traced bill fell from %v to %v", r.lastMarketCost, c)
	}
	if c > r.lastMarketCost {
		r.lastMarketCost = c
	}
}

// marketEnd checks the end-of-run market report against the observed
// events and the traced bill.
func (r *runAudit) marketEnd(res *sim.Result) {
	now := r.last
	const eps = 1e-9
	if res.Market == nil {
		if r.env.Market() != nil {
			r.fail(now, "market-report-missing", "market run finished without a market report")
		}
		return
	}
	m := res.Market
	if math.Abs(res.Cost-m.Cost.Total) > eps {
		r.fail(now, "market-cost", "Cost %v != market bill total %v", res.Cost, m.Cost.Total)
	}
	if billed := r.env.MarketCostAt(res.Makespan); math.Abs(m.Cost.Total-billed) > eps {
		r.fail(now, "market-cost", "market bill %v != traced bill at makespan %v", m.Cost.Total, billed)
	}
	if m.Cost.Total < r.lastMarketCost-eps {
		r.fail(now, "market-cost-monotone", "final bill %v below mid-run bill %v", m.Cost.Total, r.lastMarketCost)
	}
	if m.Notices != r.mNotices {
		r.fail(now, "market-notices", "report says %d notices, auditor observed %d", m.Notices, r.mNotices)
	}
	if m.Kills != r.revoked {
		r.fail(now, "market-kills", "report says %d kills, auditor observed %d revocations", m.Kills, r.revoked)
	}
	if m.Degraded != r.mDegrades {
		r.fail(now, "market-degraded", "report says %d degradations, auditor observed %d", m.Degraded, r.mDegrades)
	}
	alive := 0
	for v := range r.cordoned {
		if !r.dead[v] {
			alive++
		}
	}
	if m.CordonedAtEnd != alive {
		r.fail(now, "market-cordoned", "report says %d cordoned at end, auditor counts %d", m.CordonedAtEnd, alive)
	}
}
