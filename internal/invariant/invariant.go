// Package invariant is the simulation correctness harness: a runtime
// auditor that watches sim.Engine runs through the sim.Hook interface
// and checks structural invariants at every transition, plus
// differential helpers (DiffResults, CloneResult) used by the
// determinism test suites and the -audit mode of the binaries.
//
// The auditor checks, during the run:
//
//   - the virtual clock never goes backwards and is never NaN;
//   - VM slot accounting never goes negative and never exceeds the
//     VM's vCPU count, cross-checked against the engine's own
//     FreeSlots bookkeeping;
//   - the scheduling context is well-formed at every decision: the
//     ready queue is sorted by (ReadyAt, Index) without duplicates,
//     idle VMs are actually idle, and the VM list is sorted by
//     strictly increasing IDs (which also catches duplicate IDs from
//     autoscaler allocation bugs);
//   - dead VMs (spot-revoked or idle-retired) never accept work;
//   - under a market trace: cordoned VMs never start new work, every
//     kill was preceded by its notice, and the traced bill is
//     non-negative and monotone (see market.go);
//
// and at the end of the run:
//
//   - every task reached exactly one terminal state, with one
//     execution record per attempt;
//   - Result.Records and Result.PerVM agree (count, exec, wait and
//     busy conservation);
//   - Makespan, Cost, BusyCost, Elasticity and Revocations are
//     consistent with the observed events.
//
// A single Auditor may observe any number of runs, including runs of
// concurrent engines (replica learning): per-run state lives in the
// RunHook returned by RunStart, and only violation reporting is
// mutex-guarded.
package invariant

import (
	"fmt"
	"math"
	"sync"

	"reassign/internal/sim"
)

// Violation is one invariant breach observed during a run.
type Violation struct {
	// Run is the auditor-assigned ordinal of the run (0-based, in
	// RunStart order).
	Run int
	// Time is the virtual clock when the breach was observed.
	Time float64
	// Rule is a short stable identifier, e.g. "slot-overcommit".
	Rule string
	// Detail is a human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("run %d t=%.6g [%s] %s", v.Run, v.Time, v.Rule, v.Detail)
}

// Auditor checks structural invariants across simulation runs. Install
// it via sim.Config.Hook; read the outcome with Err or Violations.
// The zero value is not usable; call New.
type Auditor struct {
	mu         sync.Mutex
	runs       int
	total      int // violations observed (including dropped)
	violations []Violation
	limit      int
}

// Option configures an Auditor.
type Option func(*Auditor)

// WithLimit caps the number of stored violations (default 100).
// Violations beyond the cap are still counted by Total.
func WithLimit(n int) Option {
	return func(a *Auditor) { a.limit = n }
}

// New returns an Auditor ready to be installed as a sim.Config.Hook.
func New(opts ...Option) *Auditor {
	a := &Auditor{limit: 100}
	for _, o := range opts {
		o(a)
	}
	return a
}

// RunStart implements sim.Hook.
func (a *Auditor) RunStart(env *sim.Env) sim.RunHook {
	a.mu.Lock()
	run := a.runs
	a.runs++
	a.mu.Unlock()
	r := &runAudit{
		a:     a,
		run:   run,
		env:   env,
		busy:  make(map[*sim.VMState]int),
		dead:  make(map[*sim.VMState]bool),
		tasks: make(map[*sim.Task]*taskAudit),
		ids:   make(map[int]bool),
	}
	vms := env.VMStates()
	r.initialVMs = len(vms)
	r.checkVMOrder(0, vms, "fleet")
	for _, v := range vms {
		r.maxID = max(r.maxID, v.VM.ID)
		r.ids[v.VM.ID] = true
	}
	return r
}

// Runs returns how many runs the auditor has observed (started).
func (a *Auditor) Runs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Total returns the number of violations observed, including any
// dropped beyond the storage limit.
func (a *Auditor) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Violations returns a copy of the stored violations.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Err returns nil when no invariant was violated, and otherwise an
// error summarising the first violation and the total count.
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s) across %d run(s); first: %s",
		a.total, a.runs, a.violations[0])
}

func (a *Auditor) report(v Violation) {
	a.mu.Lock()
	a.total++
	if len(a.violations) < a.limit {
		a.violations = append(a.violations, v)
	}
	a.mu.Unlock()
}

// taskAudit is the auditor's view of one task's lifecycle.
type taskAudit struct {
	starts   int // TaskStart events (attempts)
	records  int // TaskFinish + TaskAbort events (execution records)
	terminal int // terminal finishes + cancellations
	running  bool
}

// runAudit is the per-run observer returned by RunStart.
type runAudit struct {
	a   *Auditor
	run int
	env *sim.Env

	last       float64 // clock high-water mark
	initialVMs int
	maxID      int
	ids        map[int]bool
	busy       map[*sim.VMState]int
	dead       map[*sim.VMState]bool
	tasks      map[*sim.Task]*taskAudit

	added, retired, revoked int
	readyEvents             int

	// Market-trace state (see market.go): cordoned maps a noticed VM
	// to its notice time.
	cordoned           map[*sim.VMState]float64
	mNotices, mDegrades int
	lastMarketCost     float64
}

func (r *runAudit) fail(now float64, rule, format string, args ...any) {
	r.a.report(Violation{Run: r.run, Time: now, Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// clock enforces monotonicity of the virtual clock across every hook.
func (r *runAudit) clock(now float64) {
	if math.IsNaN(now) {
		r.fail(now, "clock-nan", "virtual clock is NaN")
		return
	}
	if now < r.last {
		r.fail(now, "clock-monotonic", "clock went backwards: %v after %v", now, r.last)
		return
	}
	r.last = now
}

func (r *runAudit) task(t *sim.Task) *taskAudit {
	ta := r.tasks[t]
	if ta == nil {
		ta = &taskAudit{}
		r.tasks[t] = ta
	}
	return ta
}

// checkVMOrder verifies a VM list is sorted by strictly increasing ID
// — the engine's documented ordering, and the property that makes
// duplicate IDs (autoscaler collisions) visible.
func (r *runAudit) checkVMOrder(now float64, vms []*sim.VMState, what string) {
	for i := 1; i < len(vms); i++ {
		if vms[i-1].VM.ID >= vms[i].VM.ID {
			r.fail(now, "vm-id-order", "%s VM list not strictly increasing: id %d at %d, id %d at %d",
				what, vms[i-1].VM.ID, i-1, vms[i].VM.ID, i)
		}
	}
}

// Decision implements sim.RunHook.
func (r *runAudit) Decision(now float64, ctx *sim.Context) {
	r.clock(now)
	if ctx.Now != now {
		r.fail(now, "ctx-clock", "context Now %v != clock %v", ctx.Now, now)
	}
	seen := make(map[*sim.Task]bool, len(ctx.Ready))
	for i, t := range ctx.Ready {
		if seen[t] {
			r.fail(now, "ready-duplicate", "task %s appears twice in the ready queue", t.Act.ID)
		}
		seen[t] = true
		if t.State != sim.Ready {
			r.fail(now, "ready-state", "task %s in ready queue with state %v", t.Act.ID, t.State)
		}
		if i == 0 {
			continue
		}
		p := ctx.Ready[i-1]
		if p.ReadyAt > t.ReadyAt || (p.ReadyAt == t.ReadyAt && p.Act.Index >= t.Act.Index) {
			r.fail(now, "ready-order", "ready queue not sorted by (ReadyAt, Index): (%v,%d) before (%v,%d)",
				p.ReadyAt, p.Act.Index, t.ReadyAt, t.Act.Index)
		}
	}
	for _, v := range ctx.IdleVMs {
		if !v.Idle() {
			r.fail(now, "idle-not-idle", "%v listed idle but is not", v)
		}
		if r.dead[v] {
			r.fail(now, "idle-dead", "%v listed idle but was retired/revoked", v)
		}
	}
	r.checkVMOrder(now, ctx.IdleVMs, "idle")
	r.checkVMOrder(now, ctx.AllVMs, "all")
	r.marketCost(now)
}

// TaskReady implements sim.RunHook.
func (r *runAudit) TaskReady(now float64, t *sim.Task) {
	r.clock(now)
	r.readyEvents++
	if t.State != sim.Ready {
		r.fail(now, "ready-state", "task %s became ready with state %v", t.Act.ID, t.State)
	}
	if t.ReadyAt != now {
		r.fail(now, "ready-time", "task %s ReadyAt %v != now %v", t.Act.ID, t.ReadyAt, now)
	}
}

// TaskStart implements sim.RunHook.
func (r *runAudit) TaskStart(now float64, t *sim.Task, v *sim.VMState) {
	r.clock(now)
	ta := r.task(t)
	ta.starts++
	if ta.running {
		r.fail(now, "double-start", "task %s started while already running", t.Act.ID)
	}
	ta.running = true
	if t.State != sim.Running {
		r.fail(now, "start-state", "task %s started with state %v", t.Act.ID, t.State)
	}
	if t.Attempts != ta.starts {
		r.fail(now, "attempt-count", "task %s Attempts %d after %d observed starts", t.Act.ID, t.Attempts, ta.starts)
	}
	if r.dead[v] {
		r.fail(now, "dead-vm-start", "task %s started on retired/revoked %v", t.Act.ID, v)
	}
	if !v.Booted() {
		r.fail(now, "unbooted-start", "task %s started on unbooted %v", t.Act.ID, v)
	}
	r.marketStart(now, t, v)
	r.busy[v]++
	if r.busy[v] > v.Slots {
		r.fail(now, "slot-overcommit", "%v holds %d tasks with %d slots", v, r.busy[v], v.Slots)
	}
	if free := v.Slots - r.busy[v]; v.FreeSlots() != free {
		r.fail(now, "slot-divergence", "%v reports %d free slots, auditor counts %d", v, v.FreeSlots(), free)
	}
}

// finish records the end of one execution attempt (completion or
// abort) on v.
func (r *runAudit) finish(now float64, t *sim.Task, v *sim.VMState, rule string) *taskAudit {
	ta := r.task(t)
	ta.records++
	if !ta.running {
		r.fail(now, rule, "task %s finished while not running", t.Act.ID)
	}
	ta.running = false
	r.busy[v]--
	if r.busy[v] < 0 {
		r.fail(now, "slot-negative", "%v released below zero", v)
	}
	return ta
}

// TaskFinish implements sim.RunHook.
func (r *runAudit) TaskFinish(now float64, t *sim.Task, v *sim.VMState, terminal, success bool) {
	r.clock(now)
	ta := r.finish(now, t, v, "finish-not-running")
	if terminal {
		ta.terminal++
		if success && t.State != sim.Succeeded {
			r.fail(now, "finish-state", "task %s succeeded with state %v", t.Act.ID, t.State)
		}
	}
	if t.FinishAt != now {
		r.fail(now, "finish-time", "task %s FinishAt %v != now %v", t.Act.ID, t.FinishAt, now)
	}
	if t.StartAt > t.FinishAt {
		r.fail(now, "finish-before-start", "task %s started %v after finishing %v", t.Act.ID, t.StartAt, t.FinishAt)
	}
}

// TaskAbort implements sim.RunHook.
func (r *runAudit) TaskAbort(now float64, t *sim.Task, v *sim.VMState) {
	r.clock(now)
	r.finish(now, t, v, "abort-not-running")
	if !r.dead[v] {
		r.fail(now, "abort-live-vm", "task %s aborted on live %v", t.Act.ID, v)
	}
}

// TaskCancel implements sim.RunHook.
func (r *runAudit) TaskCancel(now float64, t *sim.Task) {
	r.clock(now)
	ta := r.task(t)
	ta.terminal++
	if ta.starts != ta.records {
		r.fail(now, "cancel-in-flight", "task %s cancelled with an attempt in flight", t.Act.ID)
	}
	if t.State != sim.Failed {
		r.fail(now, "cancel-state", "task %s cancelled with state %v", t.Act.ID, t.State)
	}
}

// VMAdded implements sim.RunHook.
func (r *runAudit) VMAdded(now float64, v *sim.VMState) {
	r.clock(now)
	r.added++
	if r.ids[v.VM.ID] {
		r.fail(now, "vm-id-collision", "acquired VM reuses existing id %d", v.VM.ID)
	}
	if v.VM.ID <= r.maxID {
		r.fail(now, "vm-id-order", "acquired VM id %d not above fleet max %d", v.VM.ID, r.maxID)
	}
	r.ids[v.VM.ID] = true
	r.maxID = max(r.maxID, v.VM.ID)
	r.checkVMOrder(now, r.env.VMStates(), "all")
}

// VMRetired implements sim.RunHook.
func (r *runAudit) VMRetired(now float64, v *sim.VMState) {
	r.clock(now)
	r.retired++
	if r.dead[v] {
		r.fail(now, "retire-dead", "%v retired twice", v)
	}
	if r.busy[v] != 0 {
		r.fail(now, "retire-busy", "%v retired with %d running tasks", v, r.busy[v])
	}
	r.dead[v] = true
}

// VMRevoked implements sim.RunHook.
func (r *runAudit) VMRevoked(now float64, v *sim.VMState) {
	r.clock(now)
	r.revoked++
	if r.dead[v] {
		r.fail(now, "revoke-dead", "%v revoked twice", v)
	}
	r.marketRevoke(now, v)
	r.dead[v] = true
}

// RunEnd implements sim.RunHook.
func (r *runAudit) RunEnd(res *sim.Result) {
	now := r.last
	const eps = 1e-9

	// Task lifecycle: exactly one terminal state, one record per
	// attempt, nothing left running.
	records := 0
	for t, ta := range r.tasks {
		records += ta.records
		if ta.running {
			r.fail(now, "task-still-running", "task %s still running at run end", t.Act.ID)
		}
		if ta.starts != ta.records {
			r.fail(now, "attempt-record-mismatch", "task %s: %d attempts but %d records",
				t.Act.ID, ta.starts, ta.records)
		}
		if ta.terminal != 1 {
			r.fail(now, "terminal-count", "task %s reached %d terminal states, want exactly 1",
				t.Act.ID, ta.terminal)
		}
	}
	if len(res.Records) != records {
		r.fail(now, "record-conservation", "result has %d records, auditor observed %d",
			len(res.Records), records)
	}
	if res.State == sim.FinishedOK {
		w := r.env.Workflow()
		if len(r.tasks) != w.Len() {
			r.fail(now, "task-coverage", "finished-ok run touched %d of %d tasks", len(r.tasks), w.Len())
		}
		ok := make(map[string]int, w.Len())
		for _, rec := range res.Records {
			if rec.Success {
				ok[rec.TaskID]++
			}
		}
		for _, a := range w.Activations() {
			if ok[a.ID] != 1 {
				r.fail(now, "success-count", "activation %s has %d successful records, want 1", a.ID, ok[a.ID])
			}
		}
	}

	// Makespan is the latest record finish.
	var maxFinish float64
	for _, rec := range res.Records {
		if rec.FinishAt > maxFinish {
			maxFinish = rec.FinishAt
		}
	}
	if res.Makespan != maxFinish {
		r.fail(now, "makespan", "Makespan %v != max record finish %v", res.Makespan, maxFinish)
	}

	// Conservation between Records and PerVM aggregates.
	type agg struct {
		n          int
		exec, wait float64
	}
	perVM := make(map[int]agg, len(res.PerVM))
	for _, rec := range res.Records {
		if !rec.Success {
			continue
		}
		a := perVM[rec.VMID]
		a.n++
		a.exec += rec.ExecTime()
		a.wait += rec.QueueTime()
		perVM[rec.VMID] = a
		if _, known := res.PerVM[rec.VMID]; !known {
			r.fail(now, "stats-missing-vm", "record on vm%d but no PerVM entry", rec.VMID)
		}
	}
	for id, st := range res.PerVM {
		a := perVM[id]
		if st.N != a.n || math.Abs(st.SumExec-a.exec) > eps || math.Abs(st.SumWait-a.wait) > eps {
			r.fail(now, "stats-conservation",
				"vm%d stats (n=%d exec=%v wait=%v) disagree with records (n=%d exec=%v wait=%v)",
				id, st.N, st.SumExec, st.SumWait, a.n, a.exec, a.wait)
		}
		if math.Abs(st.Busy-a.exec) > eps {
			r.fail(now, "busy-conservation", "vm%d busy %v != successful exec sum %v", id, st.Busy, a.exec)
		}
	}

	// Cost and BusyCost consistency. A market run bills against the
	// traced prices instead of the fleet's nominal rate; marketEnd
	// checks that bill.
	fleet := r.env.Fleet()
	base := fleet.Cost(res.Makespan)
	if res.Market != nil {
		// checked in marketEnd
	} else if res.Elasticity == nil {
		if math.Abs(res.Cost-base) > eps {
			r.fail(now, "cost", "Cost %v != fleet cost %v", res.Cost, base)
		}
	} else if res.Cost < base-eps {
		r.fail(now, "cost", "Cost %v below fleet-only cost %v despite acquired VMs", res.Cost, base)
	}
	var busyCost float64
	for _, v := range r.env.VMStates() {
		busyCost += v.Stats().Busy * v.VM.Type.PricePerHour / (3600 * float64(v.Slots))
	}
	if math.Abs(res.BusyCost-busyCost) > eps {
		r.fail(now, "busy-cost", "BusyCost %v != recomputed %v", res.BusyCost, busyCost)
	}

	// Elasticity and revocation reports match the observed events.
	if res.Elasticity != nil {
		e := res.Elasticity
		if e.Acquired != r.added {
			r.fail(now, "elasticity-acquired", "report says %d acquired, auditor observed %d", e.Acquired, r.added)
		}
		if e.Released != r.retired {
			r.fail(now, "elasticity-released", "report says %d released, auditor observed %d", e.Released, r.retired)
		}
		if e.PeakVMs > r.initialVMs+r.added {
			r.fail(now, "elasticity-peak", "peak %d exceeds initial %d + acquired %d", e.PeakVMs, r.initialVMs, r.added)
		}
	}
	if res.Revocations != r.revoked {
		r.fail(now, "revocation-count", "result says %d revocations, auditor observed %d", res.Revocations, r.revoked)
	}

	r.marketEnd(res)
}
