package invariant

import (
	"fmt"
	"sort"

	"reassign/internal/sim"
)

// CloneResult deep-copies the parts of a Result that Engine.Reset
// reclaims (Records, PerVM, Plan, Elasticity), so a run's outcome can
// be compared after the engine runs again.
func CloneResult(r *sim.Result) *sim.Result {
	c := *r
	c.Records = append([]sim.Record(nil), r.Records...)
	c.PerVM = make(map[int]sim.VMStats, len(r.PerVM))
	for k, v := range r.PerVM {
		c.PerVM[k] = v
	}
	if r.Plan != nil {
		c.Plan = make(map[string]int, len(r.Plan))
		for k, v := range r.Plan {
			c.Plan[k] = v
		}
	}
	if r.Elasticity != nil {
		e := *r.Elasticity
		c.Elasticity = &e
	}
	return &c
}

// DiffResults compares two results field by field under the
// byte-stable-trace contract: every comparison is exact (==), never
// within-epsilon — two runs of the same configuration must agree to
// the last bit. It returns one human-readable line per difference,
// or nil when the results are identical. Kernel counters are excluded
// (a reset engine legitimately serves more events from the DES
// freelist than a fresh one), as are Decisions/Events only if you
// strip them first — by default they are compared too.
func DiffResults(a, b *sim.Result) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if a.Scheduler != b.Scheduler {
		add("scheduler: %q vs %q", a.Scheduler, b.Scheduler)
	}
	if a.State != b.State {
		add("state: %v vs %v", a.State, b.State)
	}
	if a.Makespan != b.Makespan {
		add("makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.Cost != b.Cost {
		add("cost: %v vs %v", a.Cost, b.Cost)
	}
	if a.BusyCost != b.BusyCost {
		add("busy-cost: %v vs %v", a.BusyCost, b.BusyCost)
	}
	if a.Decisions != b.Decisions {
		add("decisions: %d vs %d", a.Decisions, b.Decisions)
	}
	if a.Events != b.Events {
		add("events: %d vs %d", a.Events, b.Events)
	}
	if a.Revocations != b.Revocations {
		add("revocations: %d vs %d", a.Revocations, b.Revocations)
	}
	if len(a.Records) != len(b.Records) {
		add("records: %d vs %d", len(a.Records), len(b.Records))
	} else {
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				add("record %d: %+v vs %+v", i, a.Records[i], b.Records[i])
			}
		}
	}
	if len(a.Plan) != len(b.Plan) {
		add("plan size: %d vs %d", len(a.Plan), len(b.Plan))
	} else {
		keys := make([]string, 0, len(a.Plan))
		for k := range a.Plan {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv, ok := b.Plan[k]
			if !ok || a.Plan[k] != bv {
				add("plan[%s]: %d vs %d (present=%v)", k, a.Plan[k], bv, ok)
			}
		}
	}
	if len(a.PerVM) != len(b.PerVM) {
		add("per-VM size: %d vs %d", len(a.PerVM), len(b.PerVM))
	} else {
		ids := make([]int, 0, len(a.PerVM))
		for id := range a.PerVM {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			bv, ok := b.PerVM[id]
			if !ok || a.PerVM[id] != bv {
				add("per-VM[%d]: %+v vs %+v (present=%v)", id, a.PerVM[id], bv, ok)
			}
		}
	}
	switch {
	case (a.Elasticity == nil) != (b.Elasticity == nil):
		add("elasticity: %+v vs %+v", a.Elasticity, b.Elasticity)
	case a.Elasticity != nil && *a.Elasticity != *b.Elasticity:
		add("elasticity: %+v vs %+v", *a.Elasticity, *b.Elasticity)
	}
	return diffs
}
