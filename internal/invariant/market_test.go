package invariant

import (
	"testing"

	"reassign/internal/market"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// TestAuditMarketRun replays generated traces through audited
// simulations under every regime: the market rules (cordoned VMs
// never start work, notice precedes kill, the bill is monotone and
// matches the report) must hold with zero violations.
func TestAuditMarketRun(t *testing.T) {
	w := montage(t, 7)
	fleet := fleet16(t)
	for _, rg := range market.Regimes() {
		tr, err := market.Generate(market.DefaultCatalogue(), fleet, rg, 23, 3600)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := market.NewPlayback(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		aud := New()
		res, err := sim.Run(w, fleet, &sched.RoundRobin{}, sim.Config{
			Market: pb, Hook: aud,
		})
		if err != nil {
			t.Fatalf("%s: %v", rg.Name, err)
		}
		if res.Market == nil {
			t.Fatalf("%s: no market report", rg.Name)
		}
		if err := aud.Err(); err != nil {
			for _, v := range aud.Violations() {
				t.Logf("%s: %s", rg.Name, v)
			}
			t.Fatalf("%s: %v", rg.Name, err)
		}
	}
}

// TestAuditorDetectsMarketCostMismatch tampers with a market run's
// reported cost and checks the auditor flags it.
func TestAuditorDetectsMarketCostMismatch(t *testing.T) {
	w := montage(t, 7)
	fleet := fleet16(t)
	rg, _ := market.RegimeByName("volatile")
	tr, err := market.Generate(market.DefaultCatalogue(), fleet, rg, 23, 3600)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := market.NewPlayback(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	tamper := &costTamper{inner: aud}
	if _, err := sim.Run(w, fleet, &sched.RoundRobin{}, sim.Config{
		Market: pb, Hook: tamper,
	}); err != nil {
		t.Fatal(err)
	}
	if aud.Total() == 0 {
		t.Fatal("auditor accepted a tampered market cost")
	}
	found := false
	for _, v := range aud.Violations() {
		if v.Rule == "market-cost" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no market-cost violation among %v", aud.Violations())
	}
}

// costTamper corrupts Result.Cost just before the auditor's RunEnd.
type costTamper struct{ inner *Auditor }

func (c *costTamper) RunStart(env *sim.Env) sim.RunHook {
	return &costTamperRun{RunHook: c.inner.RunStart(env)}
}

type costTamperRun struct{ sim.RunHook }

func (c *costTamperRun) RunEnd(res *sim.Result) {
	res.Cost += 1
	c.RunHook.RunEnd(res)
}
