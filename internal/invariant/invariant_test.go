package invariant

import (
	"math"
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func montage(t testing.TB, seed int64) *dag.Workflow {
	t.Helper()
	return trace.Montage50(rand.New(rand.NewSource(seed)))
}

func fleet16(t testing.TB) *cloud.Fleet {
	t.Helper()
	f, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// dynamicScheds are schedulers that reroute work when a VM vanishes,
// so they survive spot revocations. Stateful ones get a fresh
// instance per run.
func dynamicScheds() []struct {
	name string
	mk   func() sim.Scheduler
} {
	return []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"FCFS", func() sim.Scheduler { return sched.FCFS{} }},
		{"RoundRobin", func() sim.Scheduler { return &sched.RoundRobin{} }},
		{"Random", func() sim.Scheduler { return &sched.Random{Seed: 11} }},
		{"MCT", func() sim.Scheduler { return sched.MCT{} }},
		{"MinMin", func() sim.Scheduler { return sched.MinMin{} }},
		{"MaxMin", func() sim.Scheduler { return sched.MaxMin{} }},
		{"DataAware", func() sim.Scheduler { return sched.DataAware{} }},
		{"CheapFirst", func() sim.Scheduler { return sched.CheapFirst{} }},
	}
}

// staticScheds pin activations to planned VMs and may stall under
// revocation, so they only run in the non-spot scenarios.
func staticScheds() []struct {
	name string
	mk   func() sim.Scheduler
} {
	return []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"HEFT", func() sim.Scheduler { return &sched.HEFT{} }},
		{"GA", func() sim.Scheduler { return &sched.GA{Population: 12, Generations: 6, Seed: 5} }},
		{"Adaptive", func() sim.Scheduler { return &sched.Adaptive{} }},
	}
}

func dumpViolations(t *testing.T, aud *Auditor) {
	t.Helper()
	for _, v := range aud.Violations() {
		t.Logf("  %s", v)
	}
}

// TestAuditSweep runs every scheduler across the scenario grid with
// the auditor attached and demands zero invariant violations. This is
// the harness's core claim: the engine's structural invariants hold
// under failures, fluctuation, data transfer, overhead delays, spot
// revocation, autoscaling and their combinations.
func TestAuditSweep(t *testing.T) {
	w := montage(t, 3)
	fl := fleet16(t)
	fluct := cloud.DefaultFluctuation()

	base := []struct {
		name string
		cfg  sim.Config
	}{
		{"plain", sim.Config{Seed: 7}},
		{"fluct", sim.Config{Seed: 7, Fluct: &fluct}},
		{"dt", sim.Config{Seed: 7, DataTransfer: true}},
		{"failures", sim.Config{Seed: 7, Fluct: &fluct,
			Failure: cloud.FailureModel{Rate: 0.1}, MaxRetries: 3}},
		{"delays", sim.Config{Seed: 7, Fluct: &fluct,
			EngineDelay: 0.5, QueueDelay: 0.25, PostScriptDelay: 0.1,
			ProvisionDelay: 2, ProvisionJitter: 1}},
	}
	elastic := []struct {
		name string
		cfg  sim.Config
	}{
		{"spot", sim.Config{Seed: 7, Fluct: &fluct,
			Spot: &sim.SpotPolicy{MeanLifetime: 400, KeepOne: true}}},
		{"autoscale", sim.Config{Seed: 7,
			Autoscale: &sim.Autoscale{Type: cloud.T2Micro, MaxVMs: 12,
				BootDelay: 5, IdleTimeout: 150, QueuePerFreeSlot: 0.5}}},
		{"spot+autoscale", sim.Config{Seed: 7,
			Spot: &sim.SpotPolicy{MeanLifetime: 300, KeepOne: true},
			Autoscale: &sim.Autoscale{Type: cloud.T2Micro, MaxVMs: 12,
				BootDelay: 5, IdleTimeout: 150, QueuePerFreeSlot: 0.5}}},
	}

	aud := New()
	runs := 0
	run := func(schedName string, s sim.Scheduler, scName string, cfg sim.Config) {
		t.Helper()
		cfg.Hook = aud
		if _, err := sim.Run(w, fl, s, cfg); err != nil {
			t.Fatalf("%s/%s: %v", schedName, scName, err)
		}
		runs++
	}
	for _, sc := range base {
		for _, d := range dynamicScheds() {
			run(d.name, d.mk(), sc.name, sc.cfg)
		}
		for _, s := range staticScheds() {
			run(s.name, s.mk(), sc.name, sc.cfg)
		}
	}
	for _, sc := range elastic {
		for _, d := range dynamicScheds() {
			run(d.name, d.mk(), sc.name, sc.cfg)
		}
	}
	if aud.Runs() != runs {
		t.Fatalf("auditor observed %d runs, drove %d", aud.Runs(), runs)
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// TestAuditClusteredWorkflow audits a run of a clustered workflow
// (horizontal + vertical merging) with data transfer enabled.
func TestAuditClusteredWorkflow(t *testing.T) {
	cw, err := sim.Clustering{Horizontal: true, GroupSize: 3, Vertical: true}.Apply(montage(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	aud := New()
	res, err := sim.Run(cw.Workflow, fleet16(t), sched.MCT{},
		sim.Config{Seed: 9, DataTransfer: true, Hook: aud})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != sim.FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// TestAuditReplicaLearning attaches one shared auditor to concurrent
// replica learners: every episode of every replica is audited, and
// the auditor's shared state must survive the concurrency (the race
// detector covers the locking).
func TestAuditReplicaLearning(t *testing.T) {
	aud := New()
	l, err := core.NewLearner(core.Config{
		Workflow: montage(t, 1), Fleet: fleet16(t), Episodes: 8,
		Sim: sim.Config{Hook: aud},
	}, core.WithSeed(42), core.WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LearnReplicas(); err != nil {
		t.Fatal(err)
	}
	if aud.Runs() < 3*8 {
		t.Fatalf("auditor observed %d runs, want at least %d episodes", aud.Runs(), 3*8)
	}
	if err := aud.Err(); err != nil {
		dumpViolations(t, aud)
		t.Fatal(err)
	}
}

// envGrab is a FCFS scheduler that captures the run's Env so the
// detection tests below can drive a runAudit directly with synthetic
// (invalid) event sequences.
type envGrab struct {
	sched.FCFS
	env *sim.Env
}

func (s *envGrab) Prepare(_ *dag.Workflow, _ *cloud.Fleet, env *sim.Env) error {
	s.env = env
	return nil
}

// grabEnv runs a tiny simulation and returns its Env (still valid
// after the run) plus the workflow's activations.
func grabEnv(t *testing.T) (*sim.Env, []*dag.Activation) {
	t.Helper()
	w := dag.New("tiny")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	g := &envGrab{}
	fl := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	if _, err := sim.Run(w, fl, g, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	return g.env, w.Activations()
}

func rules(aud *Auditor) map[string]bool {
	m := make(map[string]bool)
	for _, v := range aud.Violations() {
		m[v.Rule] = true
	}
	return m
}

// TestAuditorDetectsViolations feeds hand-built invalid event
// sequences straight into the hook and checks each rule fires. A
// harness that cannot flag broken runs proves nothing by staying
// silent on good ones.
func TestAuditorDetectsViolations(t *testing.T) {
	env, acts := grabEnv(t)
	vm := func(id int) *sim.VMState {
		return &sim.VMState{VM: &cloud.VM{ID: id, Type: cloud.T2Micro}, Slots: 1}
	}
	task := func(i int, st sim.TaskState, readyAt float64) *sim.Task {
		return &sim.Task{Act: acts[i], State: st, ReadyAt: readyAt}
	}

	t.Run("clock-monotonic", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.TaskReady(5, task(0, sim.Ready, 5))
		h.TaskReady(3, task(1, sim.Ready, 3))
		if !rules(aud)["clock-monotonic"] {
			t.Fatalf("backwards clock not flagged: %v", aud.Violations())
		}
	})

	t.Run("clock-nan", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.TaskReady(math.NaN(), task(0, sim.Ready, 0))
		if !rules(aud)["clock-nan"] {
			t.Fatalf("NaN clock not flagged: %v", aud.Violations())
		}
	})

	t.Run("ready-order", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.Decision(3, &sim.Context{Now: 3, Env: env, Ready: []*sim.Task{
			task(1, sim.Ready, 2), // later ReadyAt first: out of order
			task(0, sim.Ready, 1),
		}})
		if !rules(aud)["ready-order"] {
			t.Fatalf("unsorted ready queue not flagged: %v", aud.Violations())
		}
	})

	t.Run("ready-duplicate", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		dup := task(0, sim.Ready, 1)
		h.Decision(3, &sim.Context{Now: 3, Env: env, Ready: []*sim.Task{dup, dup}})
		if !rules(aud)["ready-duplicate"] {
			t.Fatalf("duplicate ready task not flagged: %v", aud.Violations())
		}
	})

	t.Run("ctx-clock-skew", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.Decision(3, &sim.Context{Now: 2, Env: env})
		if !rules(aud)["ctx-clock"] {
			t.Fatalf("context clock skew not flagged: %v", aud.Violations())
		}
	})

	t.Run("double-start-and-overcommit", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		v := vm(9)
		tk := task(0, sim.Running, 0)
		tk.Attempts = 1
		h.TaskStart(1, tk, v)
		tk.Attempts = 2
		h.TaskStart(2, tk, v) // same 1-slot VM, same still-running task
		got := rules(aud)
		if !got["double-start"] || !got["slot-overcommit"] {
			t.Fatalf("double start / overcommit not flagged: %v", aud.Violations())
		}
	})

	t.Run("vm-id-collision", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.VMAdded(1, vm(0)) // the fleet already owns ID 0
		if !rules(aud)["vm-id-collision"] {
			t.Fatalf("reused VM ID not flagged: %v", aud.Violations())
		}
	})

	t.Run("dead-vm-accepts-work", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		v := vm(9)
		h.VMRevoked(1, v)
		tk := task(0, sim.Running, 0)
		tk.Attempts = 1
		h.TaskStart(2, tk, v)
		if !rules(aud)["dead-vm-start"] {
			t.Fatalf("start on revoked VM not flagged: %v", aud.Violations())
		}
	})

	t.Run("attempt-without-record", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		tk := task(0, sim.Running, 0)
		tk.Attempts = 1
		h.TaskStart(1, tk, vm(9))
		h.RunEnd(&sim.Result{State: sim.FinishedFailed})
		got := rules(aud)
		if !got["task-still-running"] || !got["attempt-record-mismatch"] {
			t.Fatalf("dangling attempt not flagged: %v", aud.Violations())
		}
	})

	t.Run("makespan-mismatch", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.RunEnd(&sim.Result{State: sim.FinishedFailed,
			Records:  []sim.Record{{TaskID: "a", FinishAt: 10}},
			Makespan: 5})
		if !rules(aud)["makespan"] {
			t.Fatalf("wrong makespan not flagged: %v", aud.Violations())
		}
	})

	t.Run("revocation-count", func(t *testing.T) {
		aud := New()
		h := aud.RunStart(env)
		h.RunEnd(&sim.Result{State: sim.FinishedFailed, Revocations: 3})
		if !rules(aud)["revocation-count"] {
			t.Fatalf("phantom revocations not flagged: %v", aud.Violations())
		}
	})
}

// TestAuditorLimit checks the violation storage cap: everything is
// counted, only the first `limit` are kept.
func TestAuditorLimit(t *testing.T) {
	env, acts := grabEnv(t)
	aud := New(WithLimit(1))
	h := aud.RunStart(env)
	h.TaskReady(5, &sim.Task{Act: acts[0], State: sim.Ready, ReadyAt: 5})
	h.TaskReady(3, &sim.Task{Act: acts[1], State: sim.Ready, ReadyAt: 3})
	h.TaskReady(1, &sim.Task{Act: acts[1], State: sim.Ready, ReadyAt: 1})
	if aud.Total() != 2 {
		t.Fatalf("Total = %d, want 2", aud.Total())
	}
	if len(aud.Violations()) != 1 {
		t.Fatalf("stored %d violations, want 1", len(aud.Violations()))
	}
	if aud.Err() == nil {
		t.Fatal("Err() nil despite violations")
	}
}
