// Package dax reads and writes Pegasus DAX workflow descriptions —
// the XML format published by the Pegasus Workflow Generator that the
// paper's Montage traces use — and converts them to and from the dag
// model.
//
// The subset implemented covers everything the generator emits:
// <job> elements with id/namespace/name/runtime, nested <uses>
// file declarations with link direction and size, and <child>/<parent>
// dependency declarations.
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"reassign/internal/dag"
)

// xmlAdag mirrors the <adag> document element.
type xmlAdag struct {
	XMLName  xml.Name   `xml:"adag"`
	Xmlns    string     `xml:"xmlns,attr,omitempty"`
	Version  string     `xml:"version,attr,omitempty"`
	Name     string     `xml:"name,attr"`
	JobCount string     `xml:"jobCount,attr,omitempty"`
	Jobs     []xmlJob   `xml:"job"`
	Children []xmlChild `xml:"child"`
}

type xmlJob struct {
	ID        string       `xml:"id,attr"`
	Namespace string       `xml:"namespace,attr,omitempty"`
	Name      string       `xml:"name,attr"`
	Version   string       `xml:"version,attr,omitempty"`
	Runtime   string       `xml:"runtime,attr"`
	Argument  *xmlArgument `xml:"argument"`
	Uses      []xmlUses    `xml:"uses"`
}

// xmlArgument captures a job's <argument> element: mixed content of
// text and <file>/<filename> references, flattened to an argv the
// execution stage's command runner can exec directly.
type xmlArgument struct {
	Argv []string
}

// UnmarshalXML implements xml.Unmarshaler: character data is kept
// verbatim and nested file references contribute their file name,
// then the whole is split on whitespace.
func (a *xmlArgument) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	var buf strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.CharData:
			buf.Write(t)
		case xml.StartElement:
			for _, attr := range t.Attr {
				if attr.Name.Local == "file" || attr.Name.Local == "name" {
					buf.WriteString(" ")
					buf.WriteString(attr.Value)
					buf.WriteString(" ")
					break
				}
			}
			if err := d.Skip(); err != nil {
				return err
			}
		case xml.EndElement:
			if t.Name == start.Name {
				a.Argv = strings.Fields(buf.String())
				return nil
			}
		}
	}
}

// MarshalXML implements xml.Marshaler: the argv joined on spaces.
func (a *xmlArgument) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	return e.EncodeElement(strings.Join(a.Argv, " "), start)
}

type xmlUses struct {
	File string `xml:"file,attr"`
	Link string `xml:"link,attr"`
	Size string `xml:"size,attr,omitempty"`
}

type xmlChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []xmlParent `xml:"parent"`
}

type xmlParent struct {
	Ref string `xml:"ref,attr"`
}

// Read parses a DAX document into a workflow.
func Read(r io.Reader) (*dag.Workflow, error) {
	var doc xmlAdag
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dax: decode: %w", err)
	}
	name := doc.Name
	if name == "" {
		name = "workflow"
	}
	w := dag.New(name)
	for _, j := range doc.Jobs {
		rt, err := parseRuntime(j.Runtime)
		if err != nil {
			return nil, fmt.Errorf("dax: job %q: %w", j.ID, err)
		}
		a, err := w.Add(j.ID, j.Name, rt)
		if err != nil {
			return nil, fmt.Errorf("dax: %w", err)
		}
		if j.Argument != nil {
			a.Args = j.Argument.Argv
		}
		for _, u := range j.Uses {
			size := int64(0)
			if u.Size != "" {
				size, err = strconv.ParseInt(u.Size, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dax: job %q file %q: bad size %q", j.ID, u.File, u.Size)
				}
			}
			f := dag.File{Name: u.File, Size: size}
			switch u.Link {
			case "input":
				a.Inputs = append(a.Inputs, f)
			case "output":
				a.Outputs = append(a.Outputs, f)
			default:
				return nil, fmt.Errorf("dax: job %q file %q: unknown link %q", j.ID, u.File, u.Link)
			}
		}
	}
	for _, c := range doc.Children {
		for _, p := range c.Parents {
			if err := w.AddDep(p.Ref, c.Ref); err != nil {
				return nil, fmt.Errorf("dax: %w", err)
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("dax: %w", err)
	}
	return w, nil
}

func parseRuntime(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing runtime")
	}
	rt, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad runtime %q", s)
	}
	if rt < 0 {
		return 0, fmt.Errorf("negative runtime %v", rt)
	}
	return rt, nil
}

// ReadFile parses the DAX file at path.
func ReadFile(path string) (*dag.Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write serialises a workflow as a DAX document.
func Write(w io.Writer, wf *dag.Workflow) error {
	doc := xmlAdag{
		Xmlns:    "http://pegasus.isi.edu/schema/DAX",
		Version:  "2.1",
		Name:     wf.Name,
		JobCount: strconv.Itoa(wf.Len()),
	}
	for _, a := range wf.Activations() {
		j := xmlJob{
			ID:        a.ID,
			Namespace: wf.Name,
			Name:      a.Activity,
			Version:   "1.0",
			Runtime:   strconv.FormatFloat(a.Runtime, 'f', -1, 64),
		}
		if len(a.Args) > 0 {
			j.Argument = &xmlArgument{Argv: a.Args}
		}
		for _, f := range a.Inputs {
			j.Uses = append(j.Uses, xmlUses{File: f.Name, Link: "input", Size: strconv.FormatInt(f.Size, 10)})
		}
		for _, f := range a.Outputs {
			j.Uses = append(j.Uses, xmlUses{File: f.Name, Link: "output", Size: strconv.FormatInt(f.Size, 10)})
		}
		doc.Jobs = append(doc.Jobs, j)
	}
	// One <child> element per activation with parents, parents sorted
	// for deterministic output.
	for _, a := range wf.Activations() {
		ps := a.Parents()
		if len(ps) == 0 {
			continue
		}
		c := xmlChild{Ref: a.ID}
		ids := make([]string, len(ps))
		for i, p := range ps {
			ids[i] = p.ID
		}
		sort.Strings(ids)
		for _, id := range ids {
			c.Parents = append(c.Parents, xmlParent{Ref: id})
		}
		doc.Children = append(doc.Children, c)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dax: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteFile serialises a workflow to the DAX file at path.
func WriteFile(path string, wf *dag.Workflow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, wf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
