package dax

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"reassign/internal/dag"
)

const argvDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="argv" jobCount="2">
  <job id="J1" name="mProjectPP" runtime="10">
    <argument>-X -x 0.90475 <filename file="raw_0.fits"/> <filename file="proj_0.fits"/> big_region.hdr</argument>
    <uses file="raw_0.fits" link="input" size="1"/>
    <uses file="proj_0.fits" link="output" size="1"/>
  </job>
  <job id="J2" name="mBackground" runtime="5">
    <uses file="proj_0.fits" link="input" size="1"/>
    <uses file="out.fits" link="output" size="1"/>
  </job>
  <child ref="J2"><parent ref="J1"/></child>
</adag>
`

func TestReadArgument(t *testing.T) {
	w, err := Read(strings.NewReader(argvDAX))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"-X", "-x", "0.90475", "raw_0.fits", "proj_0.fits", "big_region.hdr"}
	if got := w.Get("J1").Args; !reflect.DeepEqual(got, want) {
		t.Fatalf("J1 args = %q, want %q", got, want)
	}
	if got := w.Get("J2").Args; len(got) != 0 {
		t.Fatalf("J2 args = %q, want none", got)
	}
}

func TestArgumentRoundTrip(t *testing.T) {
	w := dag.New("rt")
	a := w.MustAdd("A", "tool", 3)
	a.Args = []string{"tool", "-v", "in.dat", "out.dat"}
	w.MustAdd("B", "other", 2)

	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Get("A").Args; !reflect.DeepEqual(got, a.Args) {
		t.Fatalf("round-tripped args = %q, want %q", got, a.Args)
	}
	if got := back.Get("B").Args; len(got) != 0 {
		t.Fatalf("B gained args %q", got)
	}
}

func TestCloneCopiesArgs(t *testing.T) {
	w := dag.New("c")
	a := w.MustAdd("A", "tool", 1)
	a.Args = []string{"tool", "x"}
	c := w.Clone()
	got := c.Get("A").Args
	if !reflect.DeepEqual(got, a.Args) {
		t.Fatalf("clone args = %q", got)
	}
	got[1] = "mutated"
	if a.Args[1] != "x" {
		t.Fatal("clone shares the args slice with the original")
	}
}
