package dax

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the DAX parser. Inputs must
// either be rejected with an error or produce a workflow that
// round-trips: Write followed by Read preserves the activation count
// and the dependency count. The parser must never panic.
func FuzzRead(f *testing.F) {
	valid := `<?xml version="1.0" encoding="UTF-8"?>
<adag name="fuzz">
  <job id="ID0" name="mA" runtime="1.5">
    <uses file="f1" link="output" size="100"/>
  </job>
  <job id="ID1" name="mB" runtime="2.0">
    <uses file="f1" link="input" size="100"/>
  </job>
  <child ref="ID1"><parent ref="ID0"/></child>
</adag>`
	f.Add([]byte(valid))
	f.Add([]byte(`<adag name="empty"></adag>`))
	f.Add([]byte(`<adag><job id="a" runtime="nope"/></adag>`))
	f.Add([]byte(`not xml at all`))
	f.Add([]byte(`<adag><child ref="missing"><parent ref="gone"/></child></adag>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		wf, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		edges := func() int {
			n := 0
			for _, a := range wf.Activations() {
				n += len(a.Parents())
			}
			return n
		}
		wantLen, wantEdges := wf.Len(), edges()

		var buf bytes.Buffer
		if err := Write(&buf, wf); err != nil {
			t.Fatalf("Write failed on a workflow Read accepted: %v", err)
		}
		wf2, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read rejected its own Write output: %v", err)
		}
		if wf2.Len() != wantLen {
			t.Fatalf("round-trip changed activation count: %d -> %d", wantLen, wf2.Len())
		}
		n := 0
		for _, a := range wf2.Activations() {
			n += len(a.Parents())
		}
		if n != wantEdges {
			t.Fatalf("round-trip changed dependency count: %d -> %d", wantEdges, n)
		}
	})
}
