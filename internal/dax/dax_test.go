package dax

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"reassign/internal/dag"
	"reassign/internal/trace"
)

const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="Montage" jobCount="3">
  <job id="ID00000" namespace="Montage" name="mProjectPP" version="1.0" runtime="13.59">
    <uses file="raw_0.fits" link="input" size="4222080"/>
    <uses file="proj_0.fits" link="output" size="8400000"/>
  </job>
  <job id="ID00001" namespace="Montage" name="mProjectPP" version="1.0" runtime="11.2">
    <uses file="raw_1.fits" link="input" size="4222080"/>
    <uses file="proj_1.fits" link="output" size="8400000"/>
  </job>
  <job id="ID00002" namespace="Montage" name="mDiffFit" version="1.0" runtime="10.0">
    <uses file="proj_0.fits" link="input" size="8400000"/>
    <uses file="proj_1.fits" link="input" size="8400000"/>
    <uses file="diff.fits" link="output" size="300000"/>
  </job>
  <child ref="ID00002">
    <parent ref="ID00000"/>
    <parent ref="ID00001"/>
  </child>
</adag>
`

func TestReadSample(t *testing.T) {
	w, err := Read(strings.NewReader(sampleDAX))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "Montage" {
		t.Fatalf("name = %q", w.Name)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	diff := w.Get("ID00002")
	if diff == nil || diff.Activity != "mDiffFit" {
		t.Fatalf("ID00002 = %v", diff)
	}
	if len(diff.Parents()) != 2 {
		t.Fatalf("ID00002 parents = %d, want 2", len(diff.Parents()))
	}
	if diff.Runtime != 10.0 {
		t.Fatalf("runtime = %v", diff.Runtime)
	}
	if len(diff.Inputs) != 2 || len(diff.Outputs) != 1 {
		t.Fatalf("files: %d in, %d out", len(diff.Inputs), len(diff.Outputs))
	}
	if diff.Inputs[0].Size != 8400000 {
		t.Fatalf("input size = %d", diff.Inputs[0].Size)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":        "this is not xml",
		"bad runtime":    `<adag name="w"><job id="a" name="x" runtime="abc"/></adag>`,
		"neg runtime":    `<adag name="w"><job id="a" name="x" runtime="-3"/></adag>`,
		"no runtime":     `<adag name="w"><job id="a" name="x"/></adag>`,
		"dup id":         `<adag name="w"><job id="a" name="x" runtime="1"/><job id="a" name="x" runtime="1"/></adag>`,
		"bad link":       `<adag name="w"><job id="a" name="x" runtime="1"><uses file="f" link="sideways"/></job></adag>`,
		"bad size":       `<adag name="w"><job id="a" name="x" runtime="1"><uses file="f" link="input" size="huge"/></job></adag>`,
		"unknown parent": `<adag name="w"><job id="a" name="x" runtime="1"/><child ref="a"><parent ref="ghost"/></child></adag>`,
		"unknown child":  `<adag name="w"><job id="a" name="x" runtime="1"/><child ref="ghost"><parent ref="a"/></child></adag>`,
		"empty":          `<adag name="w"></adag>`,
		"cycle": `<adag name="w"><job id="a" name="x" runtime="1"/><job id="b" name="x" runtime="1"/>` +
			`<child ref="a"><parent ref="b"/></child><child ref="b"><parent ref="a"/></child></adag>`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("case %q: no error", name)
		}
	}
}

func TestReadDefaultsName(t *testing.T) {
	w, err := Read(strings.NewReader(`<adag><job id="a" name="x" runtime="1"/></adag>`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "workflow" {
		t.Fatalf("name = %q, want fallback", w.Name)
	}
}

// equalWorkflows compares structure, runtimes and files.
func equalWorkflows(a, b *dag.Workflow) bool {
	if a.Len() != b.Len() || a.Edges() != b.Edges() {
		return false
	}
	for _, aa := range a.Activations() {
		bb := b.Get(aa.ID)
		if bb == nil || bb.Activity != aa.Activity {
			return false
		}
		if bb.Runtime != aa.Runtime {
			return false
		}
		if len(bb.Inputs) != len(aa.Inputs) || len(bb.Outputs) != len(aa.Outputs) {
			return false
		}
		for i := range aa.Inputs {
			if aa.Inputs[i] != bb.Inputs[i] {
				return false
			}
		}
		for i := range aa.Outputs {
			if aa.Outputs[i] != bb.Outputs[i] {
				return false
			}
		}
		for _, c := range aa.Children() {
			if !b.HasDep(aa.ID, c.ID) {
				return false
			}
		}
	}
	return true
}

func TestRoundTripMontage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := trace.Montage50(rng)
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWorkflows(w, got) {
		t.Fatal("round trip changed the workflow")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.dax")
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage(rng, 4, 2)
	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWorkflows(w, got) {
		t.Fatal("file round trip changed the workflow")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.dax")); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated workflow family round-trips through DAX.
func TestPropertyRoundTripAllFamilies(t *testing.T) {
	f := func(seed int64, rawSize uint8) bool {
		size := int(rawSize)%80 + 10
		for _, fam := range trace.Families() {
			rng := rand.New(rand.NewSource(seed))
			w := trace.Named(fam)(rng, size)
			var buf bytes.Buffer
			if err := Write(&buf, w); err != nil {
				return false
			}
			got, err := Read(&buf)
			if err != nil {
				return false
			}
			if !equalWorkflows(w, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadMontage50(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := trace.Montage50(rng)
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		b.Fatal(err)
	}
	doc := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}
