GO ?= go

.PHONY: check race bench guard test build vet

## check: vet, build, and test everything (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the simulation and learning packages
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/engine/... ./internal/expt/... ./internal/telemetry/...

## bench: run the benchmark trajectory and record BENCH_core.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

## guard: fail if the headline benchmark's allocs/op regress >10%
## vs the committed BENCH_core.json baseline
guard:
	$(GO) run ./cmd/benchguard -baseline BENCH_core.json -threshold 0.10
