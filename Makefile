GO ?= go

.PHONY: check race race-replicas bench benchsmoke guard test build vet

## check: vet, build, and test everything (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the simulation and learning packages
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/engine/... ./internal/expt/... ./internal/telemetry/...

## race-replicas: race-detector pass over replica-parallel learning
## (concurrent learners sharing a fan-out telemetry sink)
race-replicas:
	$(GO) test -race -run Replica -count=1 ./internal/core/...

## bench: run the benchmark trajectory and record BENCH_core.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

## benchsmoke: one-iteration pass over the replica ladder, keeping the
## parallel learning path exercised in CI without benchmark noise
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkLearningReplicas -benchtime 1x .

## guard: fail if the headline benchmark's allocs/op regress >10%
## vs the committed BENCH_core.json baseline
guard:
	$(GO) run ./cmd/benchguard -baseline BENCH_core.json -threshold 0.10
