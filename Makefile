GO ?= go

.PHONY: check race race-replicas race-exec exec-smoke schedd-smoke loadgen-smoke market-smoke bench benchsmoke benchsmoke-large exec-bench-smoke guard test build vet audit fuzz-smoke

## check: vet, build, and test everything (the tier-1 gate)
check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the simulation and learning packages
race:
	$(GO) test -race ./internal/core/... ./internal/sim/... ./internal/engine/... ./internal/expt/... ./internal/telemetry/... ./internal/invariant/... ./internal/api/... ./internal/schedd/...

## race-replicas: race-detector pass over replica-parallel learning
## (concurrent learners sharing a fan-out telemetry sink)
race-replicas:
	$(GO) test -race -run Replica -count=1 ./internal/core/...

## race-exec: race-detector soak over the execution-stage runtime —
## TCP loopback masters with worker connections killed mid-run
race-exec:
	$(GO) test -race -count=1 ./internal/exec/...

## exec-smoke: end-to-end loopback smoke with real processes: a
## reassign master on 127.0.0.1 joined by two execworker processes,
## plus an in-process run under injected worker deaths
exec-smoke:
	mkdir -p bin
	$(GO) build -o bin/reassign ./cmd/reassign
	$(GO) build -o bin/execworker ./cmd/execworker
	bash scripts/exec_smoke.sh ./bin

## schedd-smoke: end-to-end smoke of the scheduler service: start a
## schedd daemon, drive 50 concurrent jobs through it with schedload,
## assert non-zero throughput + warm Q-table cache + clean shutdown
schedd-smoke:
	mkdir -p bin
	$(GO) build -o bin/schedd ./cmd/schedd
	$(GO) build -o bin/schedload ./cmd/schedload
	bash scripts/schedd_smoke.sh ./bin

## loadgen-smoke: end-to-end smoke of open-system mode: generate a
## short seeded multi-tenant trace (bit-identical across two runs),
## replay it against a race-detector-built schedd with tenant +
## deadline hints, assert the per-tenant report, labeled /metrics
## series, and a clean SIGTERM drain
loadgen-smoke:
	mkdir -p bin
	$(GO) build -race -o bin/schedd ./cmd/schedd
	$(GO) build -o bin/schedload ./cmd/schedload
	bash scripts/loadgen_smoke.sh ./bin

## market-smoke: end-to-end smoke of the spot-market subsystem:
## generate a hostile trace (bit-identical across two runs), replay it
## through the audited simulator, then through the exec master under
## both market policies, asserting notice-reactive pays no more than
## reactive-only
market-smoke:
	mkdir -p bin
	$(GO) build -o bin/reassign ./cmd/reassign
	bash scripts/market_smoke.sh ./bin

## bench: run the benchmark trajectory and record BENCH_core.json
bench:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

## benchsmoke: one-iteration pass over the replica ladder, keeping the
## parallel learning path exercised in CI without benchmark noise
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkLearningReplicas -benchtime 1x .

## benchsmoke-large: one-iteration pass over the large-DAG tier (1000-
## and 10k-activation workflows on 256-/1024-vCPU fleets), keeping the
## extreme-scale learning path exercised in CI
benchsmoke-large:
	$(GO) test -run '^$$' -bench BenchmarkLearningLarge -benchtime 1x .

## exec-bench-smoke: one-iteration pass over the exec throughput tier
## (InProc + loopback TCP with both codecs), keeping the wire path
## exercised in CI without benchmark noise
exec-bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkExecThroughput -benchtime 1x .

## guard: fail if any governed benchmark's allocs/op regress >10% or
## bytes/op >15% vs the committed BENCH_core.json baseline
guard:
	$(GO) run ./cmd/benchguard -baseline BENCH_core.json -threshold 0.10 -bytes-threshold 0.15

## audit: the simulation correctness harness — invariant auditor
## sweeps, fresh-vs-reset differential grid, and the spot/autoscale
## determinism regression tests (-count=1 defeats the test cache)
audit:
	$(GO) test -count=1 ./internal/invariant/...
	$(GO) test -count=1 -run 'TraceStable|Deterministic|Gapped|Pins|FreesAutoscale|Reset' ./internal/sim/...

## fuzz-smoke: a short native-fuzzing pass over the DES kernel and
## both workflow parsers, on top of replaying the checked-in corpus
fuzz-smoke:
	$(GO) test ./internal/des -fuzz FuzzKernel -fuzztime 10s
	$(GO) test ./internal/dax -fuzz FuzzRead -fuzztime 10s
	$(GO) test ./internal/wfjson -fuzz FuzzRead -fuzztime 10s
