// Package reassign's top-level benchmarks regenerate every table of
// the paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1 — Table I, the VM fleet configurations
//	BenchmarkTable2 — Table II, ReASSIgN learning time per (α, γ, ε)
//	BenchmarkTable3 — Table III, simulated makespan of learned plans
//	BenchmarkTable4 — Table IV, plans executed in the concurrent engine
//	BenchmarkTable5 — Table V, activation→VM plans at 16 vCPUs
//
// plus ablation benches for the design choices DESIGN.md §5 calls
// out. Figure 1 is an architecture diagram with no data series; the
// module layout mirrors it (see README.md).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each bench prints its table once (on the first iteration) so a
// bench run doubles as a results report; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"reassign/internal/benchsuite"
	"reassign/internal/expt"
	"reassign/internal/metrics"
)

// benchOpts is the shared configuration for the table benches: the
// paper's episode budget on the paper's workload.
func benchOpts() expt.Options {
	return expt.Options{Seed: 1, Episodes: 100}
}

// printOnce guards each table's one-time printing across -count runs.
var printOnce sync.Map

func report(b *testing.B, key string, t *metrics.Table) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", t.String())
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = expt.Table1()
	}
	report(b, "table1", t)
}

// sweepCache shares the expensive 27×3 sweep between the Table II and
// Table III benches (they report two views of the same experiment).
var (
	sweepOnce   sync.Once
	sweepResult *expt.SweepResult
	sweepErr    error
)

func sweep() (*expt.SweepResult, error) {
	sweepOnce.Do(func() {
		sweepResult, sweepErr = expt.RunSweep(benchOpts())
	})
	return sweepResult, sweepErr
}

func BenchmarkTable2(b *testing.B) {
	s, err := sweep()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = expt.Table2(s)
	}
	report(b, "table2", t)
}

func BenchmarkTable3(b *testing.B) {
	s, err := sweep()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = expt.Table3(s)
	}
	report(b, "table3", t)
}

// BenchmarkLearning100Episodes measures the underlying cost Table II
// reports: one full ReASSIgN learning run (100 episodes, Montage 50)
// on the 16-vCPU fleet. It delegates to the governed suite so the
// `go test -bench` entry point and BENCH_core.json measure the same
// code.
func BenchmarkLearning100Episodes(b *testing.B) {
	benchsuite.Learning100(b)
}

// BenchmarkLearningLarge is the extreme-scale tier: MontageN
// workflows on block-scaled fleets (1000 activations × 256 vCPUs at
// the paper's 100-episode budget, 10k × 1024 at a 5-episode smoke
// budget). Episodes/sec and act-ep/s are the headline metrics.
func BenchmarkLearningLarge(b *testing.B) {
	b.Run("1000x256", benchsuite.LearningLarge(1000, 256, 100))
	b.Run("10000x1024", benchsuite.LearningLarge(10000, 1024, 5))
}

// BenchmarkExecThroughput is the execution-stage wire-path tier: a
// wide 1000-activation plan driven through the master over InProc
// (the no-wire ceiling) and over loopback TCP with the JSON-lines and
// framed-binary codecs at 64- and 256-worker pools. Headline metrics
// are tasks/s and, on the TCP variants, wire B/task.
func BenchmarkExecThroughput(b *testing.B) {
	b.Run("inproc-1000x64", benchsuite.ExecInProc(1000, 64))
	b.Run("tcp-json-1000x64", benchsuite.ExecTCP(1000, 64, false))
	b.Run("tcp-bin-1000x64", benchsuite.ExecTCP(1000, 64, true))
	b.Run("tcp-json-1000x256", benchsuite.ExecTCP(1000, 256, false))
	b.Run("tcp-bin-1000x256", benchsuite.ExecTCP(1000, 256, true))
}

// BenchmarkLearningReplicas measures replica-parallel learning: K
// concurrent 100-episode learners per op on the same workload as
// BenchmarkLearning100Episodes. The ensemble's results are
// bit-identical for any GOMAXPROCS; only the wall clock scales.
func BenchmarkLearningReplicas(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		b.Run(strconv.Itoa(k), benchsuite.LearningReplicas(k))
	}
}

func BenchmarkTable4(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable4(o)
		if err != nil {
			b.Fatal(err)
		}
		t = expt.Table4(rows)
	}
	report(b, "table4", t)
}

func BenchmarkTable5(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = expt.Table5(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	share, err := expt.Table5BigVMShare(o)
	if err != nil {
		b.Fatal(err)
	}
	report(b, "table5", t)
	if _, loaded := printOnce.LoadOrStore("table5share", true); !loaded {
		b.Logf("t2.2xlarge placement share: HEFT=%.2f C1=%.2f C2=%.2f C3=%.2f",
			share["HEFT"], share["C1"], share["C2"], share["C3"])
	}
}

// Ablation benches: smaller episode budgets keep them minutes-scale
// while preserving the comparisons (DESIGN.md §5).

func ablationOpts() expt.Options {
	return expt.Options{Seed: 1, Episodes: 50}
}

func runAblation(b *testing.B, key string, fn func(expt.Options) (*metrics.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = fn(ablationOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, key, t)
}

func BenchmarkAblationRho(b *testing.B)      { runAblation(b, "rho", expt.AblationRho) }
func BenchmarkAblationMu(b *testing.B)       { runAblation(b, "mu", expt.AblationMu) }
func BenchmarkAblationPolicy(b *testing.B)   { runAblation(b, "policy", expt.AblationPolicy) }
func BenchmarkAblationEpisodes(b *testing.B) { runAblation(b, "episodes", expt.AblationEpisodes) }
func BenchmarkAblationRule(b *testing.B)     { runAblation(b, "rule", expt.AblationRule) }
func BenchmarkAblationDiscount(b *testing.B) { runAblation(b, "discount", expt.AblationDiscount) }
func BenchmarkAblationBootstrap(b *testing.B) {
	runAblation(b, "bootstrap", expt.AblationBootstrap)
}
func BenchmarkAblationClustering(b *testing.B) {
	runAblation(b, "clustering", expt.AblationClustering)
}

// BenchmarkBaselines runs the wider scheduler comparison on each
// Table I fleet.
func BenchmarkBaselines(b *testing.B) {
	for _, vcpus := range []int{16, 32, 64} {
		vcpus := vcpus
		b.Run(fmt.Sprintf("%dvcpu", vcpus), func(b *testing.B) {
			b.ReportAllocs()
			var t *metrics.Table
			for i := 0; i < b.N; i++ {
				var err error
				t, err = expt.BaselineComparison(ablationOpts(), vcpus)
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, fmt.Sprintf("baselines%d", vcpus), t)
		})
	}
}

// BenchmarkOpenSystem is the open-system throughput tier: a fixed
// seeded multi-tenant arrival trace replayed through every policy
// lane (learned warm-table ReASSIgN, HEFT, greedy, EDF) at 3 and 6
// tenants. The headline metric is lane-jobs served per wall second.
func BenchmarkOpenSystem(b *testing.B) {
	b.Run("3tenants", benchsuite.OpenSystem(3))
	b.Run("6tenants", benchsuite.OpenSystem(6))
}

// BenchmarkMarketPlayback is the spot-market tier: the step-function
// price integration behind every bill, and a full execution replay
// with a hostile trace feeding preemption notices, kills and health
// degradations into the master. The gap between exec-200x16 here and
// the market-free InProc ceiling is the cost of
// cordon/drain/remediate.
func BenchmarkMarketPlayback(b *testing.B) {
	b.Run("cost", benchsuite.MarketCost())
	b.Run("exec-200x16", benchsuite.MarketExec(200))
}
