module reassign

go 1.22
