// Algebra: define a workflow the SciCumulus way — as an algebraic
// pipeline over relations (Map/SplitMap/Reduce/Filter) — expand it
// into activations with exact data lineage, and schedule it with
// ReASSIgN vs HEFT. The pipeline is shaped like SciPhy, the
// phylogenetic-analysis workflow of the SciCumulus papers: align each
// input sequence, test evolutionary models, build per-sequence trees,
// and reduce everything into a consensus.
//
// Run with: go run ./examples/algebra
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reassign/internal/algebra"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/gantt"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

func main() {
	// 1. The input relation: 16 multi-fasta sequence files across 4
	// protein families.
	input := algebra.Relation{Name: "fasta", Fields: []string{"id", "family"}}
	for i := 0; i < 16; i++ {
		input.Tuples = append(input.Tuples, algebra.Tuple{
			"id":     fmt.Sprintf("seq%02d", i),
			"family": fmt.Sprintf("fam%d", i%4),
		})
	}

	// 2. The pipeline: SciPhy's five activities as algebraic operators.
	pipeline := algebra.Pipeline{Name: "SciPhy", Activities: []algebra.Activity{
		{Name: "mafft", Op: algebra.Map, BaseCost: 25, PerTupleCost: 5,
			CostJitter: 0.2, BytesPerTuple: 60_000},
		{Name: "readseq", Op: algebra.Map, BaseCost: 2, BytesPerTuple: 50_000},
		{Name: "modelgenerator", Op: algebra.Map, BaseCost: 140,
			CostJitter: 0.25, BytesPerTuple: 12_000},
		{Name: "raxml", Op: algebra.SplitMap, SplitFactor: 2, BaseCost: 190,
			CostJitter: 0.3, BytesPerTuple: 90_000},
		{Name: "familyConsensus", Op: algebra.Reduce, GroupBy: []string{"family"},
			BaseCost: 10, PerTupleCost: 2, BytesPerTuple: 8_000},
	}}

	w, err := pipeline.Expand(rand.New(rand.NewSource(33)), input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded %s: %d activations, %d edges\n", w.Name, w.Len(), w.Edges())
	for act, n := range w.CountByActivity() {
		fmt.Printf("  %-16s × %d\n", act, n)
	}
	_, cp, err := w.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path %.1fs, total work %.1fs\n\n", cp, w.TotalRuntime())

	// 3. Schedule on the 32-vCPU fleet under fluctuation.
	fleet, err := cloud.FleetTable1(32)
	if err != nil {
		log.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	cfg := sim.Config{Fluct: &fluct, Seed: 33, DataTransfer: true}

	heft := &sched.HEFT{}
	heftRes, err := sim.Run(w, fleet, heft, cfg)
	if err != nil {
		log.Fatal(err)
	}
	l, err := core.NewLearner(core.Config{
		Workflow: w, Fleet: fleet,
		Params: core.DefaultParams(), Episodes: 100,
		Sim: cfg,
	}, core.WithSeed(33))
	if err != nil {
		log.Fatal(err)
	}
	lr, err := l.Learn()
	if err != nil {
		log.Fatal(err)
	}
	planRes, err := sim.Run(w, fleet, &sched.Plan{PlanName: "ReASSIgN", Assign: lr.Plan.Map()}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HEFT:     %s\n", metrics.FormatDuration(heftRes.Makespan))
	fmt.Printf("ReASSIgN: %s (after %d episodes in %v)\n\n",
		metrics.FormatDuration(planRes.Makespan), len(lr.Episodes), lr.LearningTime)

	// 4. Show the ReASSIgN schedule as a timeline.
	fmt.Print(gantt.FromResult(planRes, fleet).ASCII(90))
}
