// Quickstart: build a small workflow, learn a schedule with ReASSIgN,
// compare it against HEFT, and execute the winner in the concurrent
// engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/engine"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

func main() {
	// 1. Describe a workflow: a small fork-join pipeline. Runtimes are
	// reference seconds on a nominal core.
	w := dag.New("quickstart")
	w.MustAdd("load", "load", 5)
	w.MustAdd("merge", "merge", 10)
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("proc%d", i)
		w.MustAdd(id, "process", 20)
		w.MustDep("load", id)
		w.MustDep(id, "merge")
	}
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s: %d activations, %d edges\n", w.Name, w.Len(), w.Edges())

	// 2. Provision the paper's smallest fleet: 8×t2.micro + 1×t2.2xlarge.
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		log.Fatal(err)
	}

	// The environment fluctuates: micro instances get throttled, any
	// VM may pause for a live migration. Schedulers never see this in
	// their estimates — ReASSIgN learns it from measured times.
	fluct := cloud.DefaultFluctuation()
	cfg := sim.Config{Fluct: &fluct, Seed: 42}

	// 3. Baseline: HEFT's static plan, simulated.
	heft := &sched.HEFT{}
	heftRes, err := sim.Run(w, fleet, heft, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HEFT:     makespan %7.2fs (%s)\n",
		heftRes.Makespan, metrics.FormatDuration(heftRes.Makespan))

	// 4. ReASSIgN: 100 learning episodes, then greedy plan extraction.
	learner, err := core.NewLearner(core.Config{
		Workflow: w,
		Fleet:    fleet,
		Params:   core.DefaultParams(), // α=0.5, γ=1.0, ε=0.1, μ=0.5
		Episodes: 100,
		Sim:      cfg,
	}, core.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	lr, err := learner.Learn()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReASSIgN: makespan %7.2fs (%s), learned in %v over %d episodes\n",
		lr.PlanMakespan, metrics.FormatDuration(lr.PlanMakespan),
		lr.LearningTime, len(lr.Episodes))

	// 5. Execute the learned plan with real concurrency (one worker
	// per vCPU, compressed time).
	e, err := engine.New(w, fleet, lr.Plan,
		engine.WithFluctuation(&fluct),
		engine.WithSeed(4242),      // an environment the learner never saw
		engine.WithTimeScale(1e-3), // 1 virtual second = 1 ms of wall time
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := e.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: makespan %7.2fs (%s) across %d VMs, wall %v\n",
		rep.Makespan, metrics.FormatDuration(rep.Makespan), len(rep.PerVM), rep.Wall)
	for _, tr := range rep.Tasks {
		fmt.Printf("  %-6s on vm%d  start %6.2f  finish %6.2f\n",
			tr.TaskID, tr.VMID, tr.StartAt, tr.FinishAt)
	}
}
