// Comparison: run every implemented scheduler — the classical
// heuristics the paper's related work surveys plus ReASSIgN — across
// all five workflow families (Montage, CyberShake, Epigenomics,
// Inspiral, Sipht) on the 32-vCPU fleet, and report makespan and
// dollar cost under hourly billing.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	fleet, err := cloud.FleetTable1(32)
	if err != nil {
		log.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()

	// Each scheduler is scored by the mean over several fluctuation
	// seeds; single runs swing by ±20% and would misrank the field.
	const reps = 8
	mean := func(w *dag.Workflow, s sim.Scheduler) (mk, cost float64) {
		for i := 0; i < reps; i++ {
			res, err := sim.Run(w, fleet, s,
				sim.Config{Fluct: &fluct, Seed: int64(100 + i), DataTransfer: true})
			if err != nil {
				log.Fatal(err)
			}
			mk += res.Makespan
			cost += res.Cost
		}
		return mk / reps, cost / reps
	}

	for _, family := range trace.Families() {
		w := trace.Named(family)(rand.New(rand.NewSource(11)), 60)

		tab := metrics.NewTable(
			fmt.Sprintf("%s (%d activations) on 32 vCPUs, mean of %d runs", w.Name, w.Len(), reps),
			"scheduler", "makespan (s)", "cost (USD)")
		schedulers := []sim.Scheduler{
			sched.FCFS{},
			&sched.RoundRobin{},
			&sched.Random{Seed: 11},
			sched.MCT{},
			sched.MinMin{},
			sched.MaxMin{},
			sched.DataAware{},
			sched.CheapFirst{},
			&sched.HEFT{},
		}
		for _, s := range schedulers {
			mk, cost := mean(w, s)
			tab.AddRowF(s.Name(), mk, fmt.Sprintf("%.4f", cost))
		}

		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: sim.Config{Fluct: &fluct, DataTransfer: true},
		}, core.WithSeed(11))
		if err != nil {
			log.Fatal(err)
		}
		lr, err := l.Learn()
		if err != nil {
			log.Fatal(err)
		}
		mk, cost := mean(w, &sched.Plan{PlanName: "ReASSIgN", Assign: lr.Plan.Map()})
		tab.AddRowF("ReASSIgN", mk, fmt.Sprintf("%.4f", cost))

		fmt.Println(tab.String())
	}
}
