// Multisite: schedule a data-heavy workflow across two cloud regions
// connected by a slow WAN link — the multi-site setting of the
// paper's related work. Compares site-blind schedulers against the
// site-aware heuristic and a ReASSIgN agent that learns the topology
// implicitly from measured times.
//
// Run with: go run ./examples/multisite
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	// Two regions, 2 MB/s across the WAN, fast links inside.
	topo := cloud.NewTopology(2, "us-east", "eu-west")
	fleet, err := cloud.NewMultiSiteFleet("two-region", topo, []cloud.SiteSpec{
		{Site: "us-east", Types: []cloud.VMType{cloud.T2Large, cloud.T22XLarge}, Counts: []int{2, 1}},
		{Site: "eu-west", Types: []cloud.VMType{cloud.T2Large, cloud.T22XLarge}, Counts: []int{2, 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d VMs over %v, %d vCPUs\n",
		fleet.Len(), topo.Sites(), fleet.VCPUs())

	// Montage moves megabytes between stages — exactly what hurts
	// across a WAN.
	w := trace.Montage50(rand.New(rand.NewSource(13)))
	var bytes int64
	for _, a := range w.Activations() {
		bytes += a.OutputBytes()
	}
	fmt.Printf("workflow: %s, %.0f MB of intermediates\n\n", w.Name, float64(bytes)/1e6)

	cfg := sim.Config{DataTransfer: true, Seed: 13}
	tab := metrics.NewTable("Two-region Montage (2 MB/s WAN)",
		"scheduler", "makespan", "cross-site share")
	run := func(s sim.Scheduler) *sim.Result {
		res, err := sim.Run(w, fleet, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRowF(res.Scheduler, metrics.FormatDuration(res.Makespan),
			fmt.Sprintf("%.0f%%", 100*crossSiteShare(w, res, fleet)))
		return res
	}
	run(&sched.Random{Seed: 13})
	run(&sched.RoundRobin{})
	run(sched.MCT{})
	run(sched.DataAware{})
	run(sched.SiteAware{})
	run(&sched.HEFT{})

	// ReASSIgN: the queue/exec times it learns from already embed the
	// WAN penalty, so the topology needs no explicit model.
	l, err := core.NewLearner(core.Config{
		Workflow: w, Fleet: fleet,
		Params: core.DefaultParams(), Episodes: 100,
		Sim: cfg,
	}, core.WithSeed(13))
	if err != nil {
		log.Fatal(err)
	}
	lr, err := l.Learn()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "ReASSIgN", Assign: lr.Plan.Map()}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tab.AddRowF("ReASSIgN", metrics.FormatDuration(res.Makespan),
		fmt.Sprintf("%.0f%%", 100*crossSiteShare(w, res, fleet)))

	fmt.Println(tab.String())
	fmt.Println("cross-site share = dependency edges whose endpoints ran in different regions")
}

// crossSiteShare returns the fraction of dependency edges crossing
// sites under the result's placement.
func crossSiteShare(w *dag.Workflow, res *sim.Result, fleet *cloud.Fleet) float64 {
	total, cross := 0, 0
	for _, a := range w.Activations() {
		for _, c := range a.Children() {
			total++
			if fleet.VMs[res.Plan[a.ID]].Site != fleet.VMs[res.Plan[c.ID]].Site {
				cross++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}
