// Paramsweep: reproduce the paper's learning-parameter study in
// miniature — sweep (α, γ, ε) over {0.1, 0.5, 1.0}³ on the 16-vCPU
// fleet. Each learned plan is scored by the mean makespan of ten
// simulated executions (the paper reports single runs; the mean
// removes fluctuation noise so the parameter effects show).
//
// The paper's Table III findings to look for: the best combination
// has γ=1.0 and ε=0.1, and a slower learning rate α beats α=1.0.
//
// Run with: go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

type combo struct {
	alpha, gamma, eps float64
	makespan          float64
	learnMS           float64
}

func main() {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		log.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	grid := []float64{0.1, 0.5, 1.0}

	evalPlan := func(plan core.Plan) float64 {
		assign := plan.Map()
		var sum float64
		const reps = 10
		for i := 0; i < reps; i++ {
			res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "plan", Assign: assign},
				sim.Config{Fluct: &fluct, Seed: int64(5000 + i)})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.Makespan
		}
		return sum / reps
	}

	var combos []combo
	for _, alpha := range grid {
		for _, gamma := range grid {
			for _, eps := range grid {
				p := core.DefaultParams()
				p.Alpha, p.Gamma, p.Epsilon = alpha, gamma, eps
				l, err := core.NewLearner(core.Config{
					Workflow: w, Fleet: fleet, Params: p,
					Episodes: 100,
					Sim:      sim.Config{Fluct: &fluct},
				}, core.WithSeed(1))
				if err != nil {
					log.Fatal(err)
				}
				res, err := l.Learn()
				if err != nil {
					log.Fatal(err)
				}
				combos = append(combos, combo{
					alpha: alpha, gamma: gamma, eps: eps,
					makespan: evalPlan(res.Plan),
					learnMS:  float64(res.LearningTime.Microseconds()) / 1000,
				})
			}
		}
	}

	sort.Slice(combos, func(i, j int) bool { return combos[i].makespan < combos[j].makespan })
	tab := metrics.NewTable("Parameter sweep on 16 vCPUs (Montage 50, 100 episodes, mean of 10 evals)",
		"rank", "alpha", "gamma", "epsilon", "plan makespan (s)", "learning (ms)")
	for i, c := range combos {
		tab.AddRowF(i+1,
			fmt.Sprintf("%.1f", c.alpha), fmt.Sprintf("%.1f", c.gamma), fmt.Sprintf("%.1f", c.eps),
			c.makespan, fmt.Sprintf("%.1f", c.learnMS))
	}
	fmt.Println(tab.String())

	best := combos[0]
	fmt.Printf("best: α=%.1f γ=%.1f ε=%.1f at %.2fs\n", best.alpha, best.gamma, best.eps, best.makespan)
	if best.gamma == 1.0 && best.eps == 0.1 {
		fmt.Println("=> matches the paper: the winning combination has γ=1.0 and ε=0.1")
	}
	var slowA, fastA []float64
	for _, c := range combos {
		if c.alpha == 1.0 {
			fastA = append(fastA, c.makespan)
		} else {
			slowA = append(slowA, c.makespan)
		}
	}
	fmt.Printf("mean makespan, α<1.0 rows: %.2fs; α=1.0 rows: %.2fs\n",
		metrics.Mean(slowA), metrics.Mean(fastA))
	if metrics.Mean(slowA) < metrics.Mean(fastA) {
		fmt.Println("=> matches the paper: a slower learning rate produces better plans")
	}
}
