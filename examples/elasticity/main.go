// Elasticity: the cloud property the paper's introduction singles out
// — growing and shrinking the fleet on demand. A bursty workflow runs
// on a minimal fleet with an autoscaling policy: the simulator
// acquires VMs under backlog (after a boot delay), releases them when
// they idle, and bills the acquired capacity hourly.
//
// Run with: go run ./examples/elasticity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/gantt"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	w := trace.Montage50(rand.New(rand.NewSource(9)))
	// Start with just two micro VMs — hopeless for the 17-wide
	// mDiffFit level without elasticity.
	fleet := cloud.MustFleet("minimal", []cloud.VMType{cloud.T2Micro}, []int{2})
	fluct := cloud.DefaultFluctuation()

	tab := metrics.NewTable("Montage 50 on 2×t2.micro, MCT scheduling (mean of 8 seeds)",
		"policy", "makespan", "cost (USD)", "acquired", "released", "peak VMs")

	// Fluctuation throttles swing single runs by minutes; average a
	// few seeds per policy.
	meanRun := func(auto *sim.Autoscale) (mk, cost float64, last *sim.Result) {
		const reps = 8
		for i := int64(0); i < reps; i++ {
			var a *sim.Autoscale
			if auto != nil {
				cp := *auto
				a = &cp
			}
			res, err := sim.Run(w, fleet, sched.MCT{}, sim.Config{Fluct: &fluct, Seed: 9 + i, Autoscale: a})
			if err != nil {
				log.Fatal(err)
			}
			mk += res.Makespan
			cost += res.Cost
			last = res
		}
		return mk / reps, cost / reps, last
	}

	mk, cost, _ := meanRun(nil)
	tab.AddRowF("static fleet", metrics.FormatDuration(mk),
		fmt.Sprintf("%.4f", cost), 0, 0, fleet.Len())

	var lastScaled *sim.Result
	for _, pol := range []struct {
		name string
		auto sim.Autoscale
	}{
		{"scale to 4 (t2.large)", sim.Autoscale{
			Type: cloud.T2Large, MaxVMs: 4, BootDelay: 45, IdleTimeout: 120, Cooldown: 20}},
		{"scale to 8 (t2.large)", sim.Autoscale{
			Type: cloud.T2Large, MaxVMs: 8, BootDelay: 45, IdleTimeout: 120, Cooldown: 20}},
		{"scale to 8, slow boot 300s", sim.Autoscale{
			Type: cloud.T2Large, MaxVMs: 8, BootDelay: 300, IdleTimeout: 120, Cooldown: 20}},
	} {
		auto := pol.auto
		mk, cost, res := meanRun(&auto)
		tab.AddRowF(pol.name, metrics.FormatDuration(mk),
			fmt.Sprintf("%.4f", cost),
			res.Elasticity.Acquired, res.Elasticity.Released, res.Elasticity.PeakVMs)
		lastScaled = res
	}
	fmt.Println(tab.String())
	fmt.Println("Boot latency caps what elasticity can save: with 300s provisioning")
	fmt.Println("the burst is over before the new VMs arrive.")
	fmt.Println()
	fmt.Print(gantt.FromResult(lastScaled, fleet).ASCII(90))
}
