// Faulttolerance: study scheduling under task failures — the
// WorkflowSim failure-injection layer. Each task execution fails with
// a configurable probability and is retried; the example sweeps the
// failure rate and shows how makespan degrades for HEFT and for a
// ReASSIgN plan learned in the same unreliable environment.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(32)
	if err != nil {
		log.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()

	tab := metrics.NewTable("Failure injection on 32 vCPUs (Montage 50, retries ≤ 10)",
		"failure rate", "HEFT makespan (s)", "ReASSIgN makespan (s)", "HEFT retries", "ReASSIgN retries")
	for _, rate := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		cfg := sim.Config{
			Fluct:      &fluct,
			Failure:    cloud.FailureModel{Rate: rate},
			MaxRetries: 10,
			Seed:       3,
		}

		heftRes, err := sim.Run(w, fleet, &sched.HEFT{}, cfg)
		if err != nil {
			log.Fatal(err)
		}

		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 60,
			Sim: cfg,
		}, core.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		lr, err := l.Learn()
		if err != nil {
			log.Fatal(err)
		}
		// Re-simulate the learned plan in the same failing environment
		// for an apples-to-apples comparison.
		planRes, err := sim.Run(w, fleet, &sched.Plan{PlanName: "ReASSIgN", Assign: lr.Plan.Map()}, cfg)
		if err != nil {
			log.Fatal(err)
		}

		tab.AddRowF(
			fmt.Sprintf("%.0f%%", rate*100),
			heftRes.Makespan,
			planRes.Makespan,
			retries(heftRes),
			retries(planRes),
		)
	}
	fmt.Println(tab.String())
	fmt.Println("Makespan grows with the failure rate for both algorithms;")
	fmt.Println("retried executions appear as extra provenance records.")
}

// retries counts executions beyond each task's first attempt.
func retries(res *sim.Result) int {
	n := 0
	for _, r := range res.Records {
		if !r.Success {
			n++
		}
	}
	return n
}
