// Montage: the paper's headline scenario end to end — generate the
// 50-activation Montage astronomy workflow, learn schedules on all
// three Table I fleets, compare ReASSIgN's plan with HEFT's, and show
// where each algorithm places the heavyweight activations.
//
// Run with: go run ./examples/montage
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	w := trace.Montage50(rng)
	fmt.Printf("%s: %d activations, %d edges\n", w.Name, w.Len(), w.Edges())
	levels, err := w.Levels()
	if err != nil {
		log.Fatal(err)
	}
	for i, lv := range levels {
		fmt.Printf("  level %d: %2d × %s\n", i, len(lv), lv[0].Activity)
	}
	_, cp, err := w.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path %.1fs, total work %.1fs\n\n", cp, w.TotalRuntime())

	fluct := cloud.DefaultFluctuation()
	for _, vcpus := range cloud.Table1VCPUs() {
		fleet, err := cloud.FleetTable1(vcpus)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.Config{Fluct: &fluct, Seed: 7}

		heft := &sched.HEFT{}
		heftRes, err := sim.Run(w, fleet, heft, cfg)
		if err != nil {
			log.Fatal(err)
		}

		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: cfg,
		}, core.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		lr, err := l.Learn()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%d vCPUs (%d VMs, $%.4f/h):\n", vcpus, fleet.Len(), fleet.PricePerHour())
		fmt.Printf("  HEFT     %s   ReASSIgN %s\n",
			metrics.FormatDuration(heftRes.Makespan), metrics.FormatDuration(lr.PlanMakespan))

		// Where do the heavyweight serial activations go? The paper's
		// Table V observation: ReASSIgN pushes them to the robust VM.
		fmt.Printf("  heavy-activation placement (VM type):\n")
		heavy := []string{"mConcatFit", "mBgModel", "mAdd"}
		for _, act := range heavy {
			for _, a := range w.Activations() {
				if a.Activity != act {
					continue
				}
				vm, _ := lr.Plan.VM(a.ID)
				fmt.Printf("    %-10s HEFT→%-11s ReASSIgN→%s\n", act,
					fleet.VMs[heft.Assign()[a.ID]].Type.Name,
					fleet.VMs[vm].Type.Name)
			}
		}
		fmt.Printf("  placement histogram (activations per VM):\n")
		fmt.Printf("    HEFT:     %s\n", histogram(heft.Assign(), fleet))
		fmt.Printf("    ReASSIgN: %s\n\n", histogram(lr.Plan.Map(), fleet))
	}
}

func histogram(plan map[string]int, fleet *cloud.Fleet) string {
	counts := make(map[int]int)
	for _, vm := range plan {
		counts[vm]++
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := ""
	for _, id := range ids {
		s += fmt.Sprintf("vm%d=%d ", id, counts[id])
	}
	return s
}
