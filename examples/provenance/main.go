// Provenance: the cross-execution learning loop of SciCumulus-RL —
// execute blindly, record provenance, calibrate a runtime estimator
// from the history, and reschedule better. It also shows resuming a
// ReASSIgN Q table from a previous session (the paper: "all
// information associated with the previous episodes is loaded
// allowing the progression of learning").
//
// Run with: go run ./examples/provenance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/estimate"
	"reassign/internal/provenance"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func main() {
	w := trace.Montage50(rand.New(rand.NewSource(21)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		log.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()

	// --- 1. Blind era: FCFS scheduling, provenance recorded. -----------
	store := provenance.NewStore()
	est := estimate.New(cloud.Types())
	var blindSum float64
	const history = 10
	for i := int64(0); i < history; i++ {
		res, err := sim.Run(w, fleet, &sched.Random{Seed: i}, sim.Config{Fluct: &fluct, Seed: i})
		if err != nil {
			log.Fatal(err)
		}
		blindSum += res.Makespan
		for _, r := range res.Records {
			store.Add(provenance.Execution{
				WorkflowName: w.Name, RunID: fmt.Sprintf("blind-%d", i),
				TaskID: r.TaskID, Activity: r.Activity,
				VMID: r.VMID, VMType: r.VMType,
				ReadyAt: r.ReadyAt, StartAt: r.StartAt, FinishAt: r.FinishAt,
				Attempts: r.Attempts, Success: r.Success,
			})
		}
	}
	fmt.Printf("blind random era: %d runs, mean makespan %.1fs, %d provenance records\n",
		history, blindSum/history, store.Len())

	// --- 2. Calibrate an estimator from the provenance database. -------
	n := est.ObserveStore(store, "")
	fmt.Printf("estimator calibrated from %d records\n", n)
	fmt.Printf("observed micro-instance slowdown: %.2fx vs t2.2xlarge\n",
		est.SlowdownFactor("t2.micro"))
	for _, line := range est.Report()[:4] {
		fmt.Println("  ", line)
	}

	// --- 3. Informed era: calibrated HEFT vs blind HEFT. ---------------
	meanOf := func(s sim.Scheduler) float64 {
		var sum float64
		for i := int64(100); i < 108; i++ {
			res, err := sim.Run(w, fleet, s, sim.Config{Fluct: &fluct, Seed: i})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.Makespan
		}
		return sum / 8
	}
	blindHEFT := meanOf(&sched.HEFT{})
	calibratedHEFT := meanOf(&sched.HEFT{Costs: est.CostFunc()})
	fmt.Printf("blind HEFT:      %.1fs mean makespan\n", blindHEFT)
	fmt.Printf("calibrated HEFT: %.1fs mean makespan (%.0f%% better)\n",
		calibratedHEFT, 100*(blindHEFT-calibratedHEFT)/blindHEFT)

	// --- 4. ReASSIgN with a persisted Q table across sessions. ---------
	qPath := filepath.Join(os.TempDir(), "reassign_qtable_example.json")
	session := func(table *rl.Table, episodes int) (*core.Result, error) {
		opts := []core.Option{core.WithSeed(21)}
		if table != nil {
			opts = append(opts, core.WithTable(table))
		}
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: episodes,
			Sim: sim.Config{Fluct: &fluct},
		}, opts...)
		if err != nil {
			return nil, err
		}
		return l.Learn()
	}
	first, err := session(nil, 50)
	if err != nil {
		log.Fatal(err)
	}
	if err := first.Table.SaveFile(qPath); err != nil {
		log.Fatal(err)
	}
	resumed := rl.NewTable(rand.New(rand.NewSource(99)), 1)
	if err := resumed.LoadFile(qPath); err != nil {
		log.Fatal(err)
	}
	second, err := session(resumed, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReASSIgN session 1 (50 episodes): plan makespan %.1fs, %d Q entries\n",
		first.PlanMakespan, first.Table.Len())
	fmt.Printf("ReASSIgN session 2 (resumed +50): plan makespan %.1fs, %d Q entries\n",
		second.PlanMakespan, second.Table.Len())
	fmt.Println("Q table persisted at", qPath)
}
