#!/usr/bin/env bash
# market_smoke.sh — end-to-end smoke test of the spot-market subsystem:
# generate a seeded hostile trace (twice — the two files must be
# bit-identical), replay it through the audited simulator with a
# dynamic scheduler, then through the exec master over in-process
# workers with both market policies, asserting the notice-reactive run
# pays no more than reactive-only for the same trace.
#
# Usage: scripts/market_smoke.sh [bindir]   (default ./bin)
set -euo pipefail

BIN=${1:-./bin}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== market-smoke: deterministic trace generation =="
GEN="-regime hostile -horizon 900 -seed 5"
"$BIN/reassign" -marketgen "$TMP/trace.json" $GEN | tee "$TMP/gen.log"
"$BIN/reassign" -marketgen "$TMP/trace2.json" $GEN > /dev/null
cmp "$TMP/trace.json" "$TMP/trace2.json" || {
    echo "market-smoke: same seed produced different traces" >&2
    exit 1
}
grep -qE 'hostile trace written .* [1-9][0-9]* events' "$TMP/gen.log" || {
    echo "market-smoke: generated trace has no events" >&2
    exit 1
}

echo "== market-smoke: audited simulation replay =="
"$BIN/reassign" -market "$TMP/trace.json" -sched rr -audit | tee "$TMP/sim.log"
grep -q '0 invariant violations' "$TMP/sim.log" || {
    echo "market-smoke: auditor did not report a clean run" >&2
    exit 1
}
grep -qE 'market: +[0-9]+ notices, [0-9]+ kills' "$TMP/sim.log" || {
    echo "market-smoke: simulation produced no market report" >&2
    exit 1
}

echo "== market-smoke: exec master replay, both policies =="
"$BIN/reassign" -market "$TMP/trace.json" -episodes 10 -execute -workers 4 \
    | tee "$TMP/nr.log"
"$BIN/reassign" -market "$TMP/trace.json" -episodes 10 -execute -workers 4 \
    -reactiveonly | tee "$TMP/ro.log"
for log in nr ro; do
    grep -q '50/50 activations' "$TMP/$log.log" || {
        echo "market-smoke: $log run lost activations" >&2
        exit 1
    }
    grep -qE 'market: +[0-9]+ notices.*bill \$0\.[0-9]+' "$TMP/$log.log" || {
        echo "market-smoke: $log run produced no market summary" >&2
        exit 1
    }
done

# Same trace, same plan inputs: the notice-reactive bill must not
# exceed the reactive-only bill (both buy replacements at kill time;
# notice-reactive additionally saves straddle-kill retries).
nr_bill=$(grep -oE 'bill \$[0-9.]+' "$TMP/nr.log" | grep -oE '[0-9.]+')
ro_bill=$(grep -oE 'bill \$[0-9.]+' "$TMP/ro.log" | grep -oE '[0-9.]+')
awk -v nr="$nr_bill" -v ro="$ro_bill" 'BEGIN { exit !(nr <= ro + 1e-9) }' || {
    echo "market-smoke: notice-reactive bill $nr_bill exceeds reactive-only $ro_bill" >&2
    exit 1
}
echo "market-smoke: bills nr=\$$nr_bill ro=\$$ro_bill"

echo "market-smoke: OK"
