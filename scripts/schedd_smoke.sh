#!/usr/bin/env bash
# schedd_smoke.sh — end-to-end smoke test of the scheduler service:
# start a schedd daemon on loopback, drive 50 concurrent jobs through
# it with schedload, assert non-zero throughput and a warm Q-table
# cache, then deliver SIGTERM and assert a clean drain.
#
# Usage: scripts/schedd_smoke.sh [bindir]   (default ./bin)
set -euo pipefail

BIN=${1:-./bin}
ADDR=127.0.0.1:8425
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== schedd-smoke: daemon + 50 concurrent jobs =="
"$BIN/schedd" -listen "$ADDR" -queue 128 > "$TMP/schedd.log" 2>&1 &
DAEMON=$!

# Wait for the listener.
for _ in $(seq 1 50); do
    if grep -q 'listening on' "$TMP/schedd.log"; then break; fi
    sleep 0.1
done
grep -q 'listening on' "$TMP/schedd.log" || {
    echo "schedd-smoke: daemon never listened" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
}

"$BIN/schedload" -addr "http://$ADDR" -jobs 50 -concurrency 50 \
    -nodes 50 -episodes 10 -distinct 2 | tee "$TMP/load.log"

grep -q '50 done, 0 failed, 0 rejected' "$TMP/load.log" || {
    echo "schedd-smoke: jobs failed or were rejected" >&2
    exit 1
}
# Non-zero throughput (the line always prints; 0.00 would mean a hang).
grep -q 'throughput' "$TMP/load.log" || {
    echo "schedd-smoke: no throughput report" >&2
    exit 1
}
if grep -qE 'throughput +0\.00 jobs/s' "$TMP/load.log"; then
    echo "schedd-smoke: zero throughput" >&2
    exit 1
fi
# Two distinct structures across 50 jobs: at least 48 warm starts.
grep -qE 'cache hits +4[89]/50' "$TMP/load.log" || {
    echo "schedd-smoke: cache hit rate off (want 48/50)" >&2
    exit 1
}

# /metrics serves both the learning telemetry and the daemon series.
curl -sf "http://$ADDR/metrics" > "$TMP/metrics.prom"
for metric in reassign_episodes_total schedd_jobs_completed_total \
    schedd_qtable_cache_hits_total schedd_job_latency_seconds_p99; do
    grep -q "$metric" "$TMP/metrics.prom" || {
        echo "schedd-smoke: /metrics missing $metric" >&2
        exit 1
    }
done

echo "== schedd-smoke: clean shutdown =="
kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
    echo "schedd-smoke: daemon exited non-zero" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
fi
grep -q 'shutdown clean' "$TMP/schedd.log" || {
    echo "schedd-smoke: no clean shutdown message" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
}

echo "schedd-smoke: OK"
