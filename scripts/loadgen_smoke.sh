#!/usr/bin/env bash
# loadgen_smoke.sh — end-to-end smoke test of open-system mode: write
# a short seeded multi-tenant trace (twice — the two files must be
# bit-identical), replay it against a race-detector-built schedd
# daemon with per-arrival tenant + deadline hints, assert the
# per-tenant report and the labeled /metrics series, then deliver
# SIGTERM and assert a clean drain.
#
# Usage: scripts/loadgen_smoke.sh [bindir]   (default ./bin)
set -euo pipefail

BIN=${1:-./bin}
ADDR=127.0.0.1:8426
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== loadgen-smoke: deterministic trace generation =="
GEN="-seed 7 -horizon 120 -tenants 3 -rate 0.05 -nodes 20"
"$BIN/schedload" -writetrace "$TMP/trace.json" $GEN | tee "$TMP/gen.log"
"$BIN/schedload" -writetrace "$TMP/trace2.json" $GEN > /dev/null
cmp "$TMP/trace.json" "$TMP/trace2.json" || {
    echo "loadgen-smoke: same seed produced different traces" >&2
    exit 1
}
grep -qE 'wrote .* [1-9][0-9]* arrivals, 3 tenants' "$TMP/gen.log" || {
    echo "loadgen-smoke: trace empty or tenant count off" >&2
    exit 1
}

echo "== loadgen-smoke: trace replay against a -race daemon =="
"$BIN/schedd" -listen "$ADDR" -queue 128 > "$TMP/schedd.log" 2>&1 &
DAEMON=$!

for _ in $(seq 1 50); do
    if grep -q 'listening on' "$TMP/schedd.log"; then break; fi
    sleep 0.1
done
grep -q 'listening on' "$TMP/schedd.log" || {
    echo "loadgen-smoke: daemon never listened" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
}

# timescale 30: the 120-virtual-second trace replays in ~4s of wall
# time. Exit code is non-zero if any job fails or is rejected.
"$BIN/schedload" -addr "http://$ADDR" -trace "$TMP/trace.json" \
    -timescale 30 -episodes 5 -sla 60s | tee "$TMP/replay.log"

grep -q 'replayed .* arrivals (3 tenants)' "$TMP/replay.log" || {
    echo "loadgen-smoke: replay did not cover all 3 tenants" >&2
    exit 1
}
# The per-tenant report breaks the run down by tenant name.
for tenant in tenant0 tenant1 tenant2; do
    grep -q "$tenant" "$TMP/replay.log" || {
        echo "loadgen-smoke: report missing $tenant" >&2
        exit 1
    }
done
# tenant1 carries deadlines (odd tenants get DeadlineFactor); with a
# generous 60s SLA its sla_jobs column (second-to-last) must be
# non-zero.
awk '$1 == "tenant1" { if ($(NF-1) + 0 > 0) ok = 1 } END { exit !ok }' \
    "$TMP/replay.log" || {
    echo "loadgen-smoke: tenant1 reported no deadline-carrying jobs" >&2
    exit 1
}

# /metrics exports per-tenant labeled series.
curl -sf "http://$ADDR/metrics" > "$TMP/metrics.prom"
for tenant in tenant0 tenant1 tenant2; do
    grep -q "schedd_tenant_jobs_submitted_total{tenant=\"$tenant\"}" "$TMP/metrics.prom" || {
        echo "loadgen-smoke: /metrics missing tenant series for $tenant" >&2
        exit 1
    }
done
grep -q 'schedd_tenant_deadline_' "$TMP/metrics.prom" || {
    echo "loadgen-smoke: /metrics missing deadline series" >&2
    exit 1
}

echo "== loadgen-smoke: clean shutdown =="
kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
    echo "loadgen-smoke: daemon exited non-zero" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
fi
grep -q 'shutdown clean' "$TMP/schedd.log" || {
    echo "loadgen-smoke: no clean shutdown message" >&2
    cat "$TMP/schedd.log" >&2
    exit 1
}

echo "loadgen-smoke: OK"
