#!/usr/bin/env bash
# exec_smoke.sh — end-to-end smoke test of the execution-stage runtime
# with real processes: a reassign master listens on loopback, two
# execworker processes join over TCP — one speaking the framed binary
# codec (wire v2), one the legacy JSON-lines codec (wire v1), so the
# mixed-version fleet path is exercised with real binaries — Montage-50
# executes, and the provenance output is checked for a complete,
# successful run. A second pass exercises the in-process transport
# under injected worker deaths (the acceptance scenario: zero lost
# activations despite failures).
#
# Usage: scripts/exec_smoke.sh [bindir]   (default ./bin)
set -euo pipefail

BIN=${1:-./bin}
ADDR=127.0.0.1:7077
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== exec-smoke: TCP loopback master + mixed binary/json execworkers =="
"$BIN/reassign" -sched heft -execute -workers 2 -listen "$ADDR" \
    -prov "$TMP/prov.json" > "$TMP/master.log" 2>&1 &
MASTER=$!
"$BIN/execworker" -connect "$ADDR" -retry 30s &
W1=$!
"$BIN/execworker" -connect "$ADDR" -retry 30s -codec json &
W2=$!

if ! wait "$MASTER"; then
    echo "exec-smoke: master failed" >&2
    cat "$TMP/master.log" >&2
    exit 1
fi
wait "$W1" "$W2" || true
cat "$TMP/master.log"

grep -q 'executed: 50/50' "$TMP/master.log" || {
    echo "exec-smoke: master did not execute all 50 activations" >&2
    exit 1
}
grep -q '"success": true' "$TMP/prov.json" || {
    echo "exec-smoke: provenance has no successful records" >&2
    exit 1
}
if grep -q '"success": false' "$TMP/prov.json"; then
    echo "exec-smoke: provenance has failed records" >&2
    exit 1
fi

echo "== exec-smoke: in-process workers under injected deaths =="
"$BIN/reassign" -sched heft -execute -workers 4 -faultrate 0.05 -failrate 0.05 \
    > "$TMP/fault.log" 2>&1
cat "$TMP/fault.log"
grep -q 'executed: 50/50' "$TMP/fault.log" || {
    echo "exec-smoke: faulty run lost activations" >&2
    exit 1
}
grep -q ' 0 abandoned' "$TMP/fault.log" || {
    echo "exec-smoke: faulty run abandoned activations" >&2
    exit 1
}

echo "exec-smoke: OK"
